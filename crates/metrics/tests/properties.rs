//! Property tests of the blocked-linkage exactness contract: the
//! pattern-index (blocked) scans produce credits and assessments that are
//! `assert_eq!`-identical — not merely close — to the all-pairs reference
//! scans, on random tables *and* after random patch sequences through the
//! incremental evaluator.
//!
//! Random instances are generated from `(shape, seed)` tuples via seeded
//! RNGs, so proptest shrinks over compact parameters while the instances
//! stay arbitrary.

use std::sync::Arc;

use cdp_dataset::{Attribute, Code, PatternIndex, Schema, SubTable};
use cdp_metrics::linkage::{
    dbrl_credits, dbrl_credits_blocked, dbrl_topk, dbrl_topk_blocked, rsrl_credits,
    rsrl_credits_blocked,
};
use cdp_metrics::{
    Evaluator, LinkageMode, MaskedStats, MetricConfig, Patch, PatchCell, PreparedOriginal,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random sub-table: `a` attributes (mixed kinds), `n` rows.
fn random_subtable(a: usize, n: usize, seed: u64) -> SubTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let attrs: Vec<Attribute> = (0..a)
        .map(|i| {
            let cats = rng.gen_range(2..=6);
            if rng.gen_bool(0.5) {
                Attribute::ordinal(format!("A{i}"), cats)
            } else {
                Attribute::nominal(format!("A{i}"), cats)
            }
        })
        .collect();
    let schema = Arc::new(Schema::new(attrs).unwrap());
    let columns: Vec<Vec<Code>> = (0..a)
        .map(|k| {
            let c = schema.attr(k).n_categories() as Code;
            (0..n).map(|_| rng.gen_range(0..c)).collect()
        })
        .collect();
    SubTable::new(schema, (0..a).collect(), columns).unwrap()
}

/// A random masking of `sub`: each cell re-drawn with probability ~0.4.
fn random_masking(sub: &SubTable, seed: u64) -> SubTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut m = sub.clone();
    for k in 0..m.n_attrs() {
        let c = m.attr(k).n_categories() as Code;
        for r in 0..m.n_rows() {
            if rng.gen_bool(0.4) {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
    }
    m
}

fn evaluator(original: &SubTable, linkage: LinkageMode) -> Evaluator {
    Evaluator::new(
        original,
        MetricConfig {
            linkage,
            ..MetricConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The free-function scans: DBRL credits, RSRL credits and the top-k
    /// disclosure rate agree bit for bit between the two backends. Few
    /// categories (2..=6) force heavy pattern duplication, exercising the
    /// multiplicity-weighted tie expansion.
    #[test]
    fn blocked_scans_equal_all_pairs_on_random_tables(
        a in 2usize..=4, n in 10usize..=60, seed in any::<u64>()
    ) {
        let original = random_subtable(a, n, seed);
        let masked = random_masking(&original, seed ^ 1);
        let prep = PreparedOriginal::new(&original);
        let index = PatternIndex::build(&masked);
        prop_assert_eq!(
            dbrl_credits_blocked(&prep, &masked, &index),
            dbrl_credits(&prep, &masked)
        );
        let stats = MaskedStats::build(&prep, &masked);
        for window in [1.0, 3.0, 10.0] {
            prop_assert_eq!(
                rsrl_credits_blocked(&prep, &stats, &index, window),
                rsrl_credits(&prep, &stats, &masked, window)
            );
        }
        for k in [1, 2, 7, 1000] {
            prop_assert_eq!(
                dbrl_topk_blocked(&prep, &masked, &index, k),
                dbrl_topk(&prep, &masked, k)
            );
        }
    }

    /// Whole-evaluator equality: a Pairs-mode and a Blocked-mode evaluator
    /// assess the same masked file to the identical `Assessment`.
    #[test]
    fn blocked_assessment_equals_pairs_assessment(
        a in 2usize..=4, n in 10usize..=50, seed in any::<u64>()
    ) {
        let original = random_subtable(a, n, seed);
        let masked = random_masking(&original, seed ^ 2);
        let pairs = evaluator(&original, LinkageMode::Pairs);
        let blocked = evaluator(&original, LinkageMode::Blocked);
        prop_assert_eq!(pairs.evaluate(&masked), blocked.evaluate(&masked));
    }

    /// The patch path: drive both evaluators through the same random
    /// mutation/patch sequence. After every step the two incremental
    /// states must agree with each other AND with a from-scratch blocked
    /// assessment — the PR's exactness contract extended to the index-
    /// patching (`PatternIndex::move_row`) code path.
    #[test]
    fn blocked_patch_path_stays_identical_to_pairs_and_full(
        a in 2usize..=3, n in 10usize..=40, seed in any::<u64>()
    ) {
        let original = random_subtable(a, n, seed);
        let mut masked = random_masking(&original, seed ^ 3);
        let pairs = evaluator(&original, LinkageMode::Pairs);
        let blocked = evaluator(&original, LinkageMode::Blocked);
        let mut state_p = pairs.assess(&masked);
        let mut state_b = blocked.assess(&masked);
        prop_assert_eq!(state_p.assessment, state_b.assessment);
        let mut rng = StdRng::seed_from_u64(seed ^ 4);
        for step in 0..6 {
            // alternate single-cell mutations and multi-cell patches
            let patch = if step % 2 == 0 {
                let row = rng.gen_range(0..masked.n_rows());
                let k = rng.gen_range(0..masked.n_attrs());
                let c = masked.attr(k).n_categories() as Code;
                let old = masked.get(row, k);
                masked.set(row, k, rng.gen_range(0..c));
                Patch::cell(row, k, old)
            } else {
                let mut cells = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for _ in 0..rng.gen_range(2..8) {
                    let row = rng.gen_range(0..masked.n_rows());
                    let k = rng.gen_range(0..masked.n_attrs());
                    if !seen.insert((row, k)) {
                        continue;
                    }
                    let c = masked.attr(k).n_categories() as Code;
                    let old = masked.get(row, k);
                    masked.set(row, k, rng.gen_range(0..c));
                    cells.push(PatchCell { row, attr: k, old });
                }
                Patch::from_cells(cells)
            };
            state_p = pairs.reassess(&state_p, &masked, &patch);
            state_b = blocked.reassess(&state_b, &masked, &patch);
            prop_assert_eq!(state_p.assessment, state_b.assessment, "step {}", step);
            prop_assert_eq!(
                state_b.assessment,
                blocked.assess(&masked).assessment,
                "step {} vs full",
                step
            );
        }
    }
}
