//! Utility-cost metrics for generalized files — the objective functions of
//! the lattice search, mirroring the metrics the anonymization literature
//! (Samarati, Incognito, OLA) optimizes.
//!
//! All costs *decrease with better utility* (smaller is better), matching
//! the orientation of the workspace's IL measures.

use crate::lattice::Lattice;
use crate::partition::Partition;

/// The discernibility metric (DM): `Σ_classes |E|²`, with every record of a
/// class violating k-anonymity charged `n` instead (the classic penalty:
/// violating records are as discernible as if the file had been released
/// unprotected). Normalized by `n²` so files of different sizes compare.
pub fn discernibility(partition: &Partition, k: usize) -> f64 {
    let n = partition.n_rows() as f64;
    let mut dm = 0f64;
    for &size in partition.class_sizes() {
        let s = size as f64;
        if (size as usize) < k {
            dm += s * n;
        } else {
            dm += s * s;
        }
    }
    dm / (n * n)
}

/// The average-class-size metric `C_avg = (n / n_classes) / k`: how much
/// larger the average class is than the minimum the model requires. Values
/// near 1 mean the recoding is tight; large values mean over-generalization.
pub fn avg_class_size(partition: &Partition, k: usize) -> f64 {
    debug_assert!(k >= 1);
    (partition.n_rows() as f64 / partition.n_classes() as f64) / k as f64
}

/// Generalization imprecision: the mean, over attributes, of
/// `level / (levels − 1)` — 0 at the lattice bottom, 1 at the top.
/// (This is `1 − Prec` of Sweeney's precision metric, oriented so smaller
/// is better.) Attributes with an identity-only hierarchy contribute 0.
pub fn imprecision(lattice: &Lattice, node: &[u8]) -> f64 {
    let mut total = 0f64;
    for (&level, &dim) in node.iter().zip(lattice.dims()) {
        if dim > 1 {
            total += level as f64 / (dim - 1) as f64;
        }
    }
    total / lattice.n_attrs() as f64
}

/// The cost function minimized by [`crate::search::LatticeSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Discernibility metric (partition-shape based).
    Discernibility,
    /// Average class size relative to `k` (partition-shape based).
    AvgClassSize,
    /// Mean normalized generalization level (node based).
    Imprecision,
}

impl CostKind {
    /// Evaluate this cost for a node and the partition it induces.
    pub fn evaluate(self, lattice: &Lattice, node: &[u8], partition: &Partition, k: usize) -> f64 {
        match self {
            CostKind::Discernibility => discernibility(partition, k),
            CostKind::AvgClassSize => avg_class_size(partition, k),
            CostKind::Imprecision => imprecision(lattice, node),
        }
    }

    /// Identifier for reports and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::Discernibility => "dm",
            CostKind::AvgClassSize => "cavg",
            CostKind::Imprecision => "imprec",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Code, Schema, SubTable};
    use std::sync::Arc;

    fn partition(col: Vec<Code>) -> Partition {
        let schema = Arc::new(Schema::new(vec![Attribute::nominal("Q", 8)]).unwrap());
        let sub = SubTable::new(schema, vec![0], vec![col]).unwrap();
        Partition::of_subtable(&sub).unwrap()
    }

    #[test]
    fn discernibility_of_one_class_is_one() {
        let p = partition(vec![0; 10]);
        assert!((discernibility(&p, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discernibility_charges_violators_n() {
        // 4 records: class of 3 + singleton; k = 2
        let p = partition(vec![0, 0, 0, 1]);
        // (3² + 1·4) / 4² = 13/16
        assert!((discernibility(&p, 2) - 13.0 / 16.0).abs() < 1e-12);
        // with k = 1 nothing violates: (9 + 1) / 16
        assert!((discernibility(&p, 1) - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn finer_partitions_discern_better() {
        let fine = partition(vec![0, 0, 1, 1, 2, 2]);
        let coarse = partition(vec![0, 0, 0, 0, 0, 0]);
        assert!(discernibility(&fine, 2) < discernibility(&coarse, 2));
    }

    #[test]
    fn avg_class_size_is_one_when_tight() {
        let p = partition(vec![0, 0, 1, 1, 2, 2]);
        assert!((avg_class_size(&p, 2) - 1.0).abs() < 1e-12);
        assert!((avg_class_size(&p, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn imprecision_spans_zero_to_one() {
        let lat = Lattice::new(vec![4, 3]).unwrap();
        assert_eq!(imprecision(&lat, &lat.bottom()), 0.0);
        assert!((imprecision(&lat, &lat.top()) - 1.0).abs() < 1e-12);
        // halfway on one attribute only
        let mid = vec![0u8, 1];
        assert!((imprecision(&lat, &mid) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identity_only_attribute_contributes_nothing() {
        let lat = Lattice::new(vec![1, 3]).unwrap();
        assert_eq!(imprecision(&lat, &lat.bottom()), 0.0);
        assert!((imprecision(&lat, &lat.top()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cost_kind_dispatch_and_names() {
        let lat = Lattice::new(vec![2]).unwrap();
        let p = partition(vec![0, 0, 1, 1]);
        let node = vec![0u8];
        assert_eq!(
            CostKind::Discernibility.evaluate(&lat, &node, &p, 2),
            discernibility(&p, 2)
        );
        assert_eq!(
            CostKind::AvgClassSize.evaluate(&lat, &node, &p, 2),
            avg_class_size(&p, 2)
        );
        assert_eq!(
            CostKind::Imprecision.evaluate(&lat, &node, &p, 2),
            imprecision(&lat, &node)
        );
        assert_eq!(CostKind::Discernibility.name(), "dm");
        assert_eq!(CostKind::AvgClassSize.name(), "cavg");
        assert_eq!(CostKind::Imprecision.name(), "imprec");
    }
}
