//! Error type for the privacy-model crate.

use std::fmt;

/// Errors raised by privacy-model computations and lattice searches.
#[derive(Debug)]
pub enum PrivacyError {
    /// An input collection was empty where data is required.
    Empty(String),
    /// Two inputs that must describe the same records disagree in shape.
    ShapeMismatch {
        /// What was being compared.
        what: String,
        /// Size of the first operand.
        left: usize,
        /// Size of the second operand.
        right: usize,
    },
    /// A parameter was outside its admissible range.
    InvalidParam(String),
    /// No lattice node satisfies the requested privacy model.
    Unsatisfiable {
        /// The requested minimum class size.
        k: usize,
    },
    /// A hierarchy's levels are not nested, so monotonic pruning (and the
    /// correctness of the Samarati binary search) is not guaranteed.
    NotNested {
        /// Attribute name of the offending hierarchy.
        attribute: String,
        /// The first level that fails to coarsen its predecessor.
        level: usize,
    },
    /// An underlying dataset operation failed.
    Dataset(cdp_dataset::DatasetError),
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::Empty(what) => write!(f, "empty input: {what}"),
            PrivacyError::ShapeMismatch { what, left, right } => {
                write!(f, "shape mismatch in {what}: {left} vs {right}")
            }
            PrivacyError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            PrivacyError::Unsatisfiable { k } => {
                write!(f, "no generalization in the lattice reaches {k}-anonymity")
            }
            PrivacyError::NotNested { attribute, level } => write!(
                f,
                "hierarchy of `{attribute}` is not nested at level {level}; \
                 lattice search requires each level to coarsen the previous one"
            ),
            PrivacyError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for PrivacyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrivacyError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cdp_dataset::DatasetError> for PrivacyError {
    fn from(e: cdp_dataset::DatasetError) -> Self {
        PrivacyError::Dataset(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PrivacyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_informative() {
        let msgs = [
            PrivacyError::Empty("partition".into()).to_string(),
            PrivacyError::ShapeMismatch {
                what: "sensitive column".into(),
                left: 10,
                right: 12,
            }
            .to_string(),
            PrivacyError::InvalidParam("k must be >= 2".into()).to_string(),
            PrivacyError::Unsatisfiable { k: 5 }.to_string(),
            PrivacyError::NotNested {
                attribute: "OCC".into(),
                level: 2,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("partition"));
        assert!(msgs[1].contains("10 vs 12"));
        assert!(msgs[2].contains("k must be"));
        assert!(msgs[3].contains("5-anonymity"));
        assert!(msgs[4].contains("OCC") && msgs[4].contains("level 2"));
    }

    #[test]
    fn dataset_error_is_chained() {
        let inner = cdp_dataset::DatasetError::Empty("x".into());
        let err = PrivacyError::from(inner);
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("dataset error"));
    }
}
