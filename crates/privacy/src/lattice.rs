//! The generalization lattice: the search space of full-domain recoding.
//!
//! Each attribute contributes a chain of hierarchy levels `0..n_levels`;
//! a lattice *node* fixes one level per attribute. Nodes are partially
//! ordered coordinate-wise: `u ≤ v` when `u` generalizes no attribute
//! beyond `v`. The classic anonymization searches (Samarati's binary
//! search, Incognito/OLA-style breadth-first sweeps) all walk this
//! lattice; [`crate::search`] implements them on top of this module.

use crate::{PrivacyError, Result};

/// A lattice node: the hierarchy level applied to each attribute.
/// Hierarchies in this domain are shallow (≤ 255 levels by construction).
pub type Node = Vec<u8>;

/// The product lattice of per-attribute level chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    /// Number of levels per attribute, each ≥ 1 (level 0 = identity).
    dims: Vec<usize>,
}

impl Lattice {
    /// Build from the number of levels of each attribute's hierarchy.
    ///
    /// # Errors
    /// [`PrivacyError::Empty`] with no attributes,
    /// [`PrivacyError::InvalidParam`] when a dimension is zero or exceeds
    /// the `u8` node representation.
    pub fn new(dims: Vec<usize>) -> Result<Self> {
        if dims.is_empty() {
            return Err(PrivacyError::Empty("lattice dimensions".into()));
        }
        for (i, &d) in dims.iter().enumerate() {
            if d == 0 {
                return Err(PrivacyError::InvalidParam(format!(
                    "attribute {i} has zero hierarchy levels"
                )));
            }
            if d > u8::MAX as usize + 1 {
                return Err(PrivacyError::InvalidParam(format!(
                    "attribute {i} has {d} levels; at most 256 are supported"
                )));
            }
        }
        Ok(Lattice { dims })
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.dims.len()
    }

    /// Levels available for each attribute.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of nodes (`Π dims`).
    pub fn n_nodes(&self) -> usize {
        self.dims.iter().product()
    }

    /// The identity node (no generalization).
    pub fn bottom(&self) -> Node {
        vec![0; self.dims.len()]
    }

    /// The fully generalized node.
    pub fn top(&self) -> Node {
        self.dims.iter().map(|&d| (d - 1) as u8).collect()
    }

    /// Height of a node: the sum of its levels.
    pub fn height(&self, node: &[u8]) -> usize {
        node.iter().map(|&l| l as usize).sum()
    }

    /// Maximum height (height of [`Lattice::top`]).
    pub fn max_height(&self) -> usize {
        self.dims.iter().map(|&d| d - 1).sum()
    }

    /// Whether `node` is a valid member of this lattice.
    pub fn contains(&self, node: &[u8]) -> bool {
        node.len() == self.dims.len()
            && node.iter().zip(&self.dims).all(|(&l, &d)| (l as usize) < d)
    }

    /// Immediate successors: one attribute generalized one level further.
    pub fn successors(&self, node: &[u8]) -> Vec<Node> {
        debug_assert!(self.contains(node));
        let mut out = Vec::new();
        for (i, &d) in self.dims.iter().enumerate() {
            if (node[i] as usize) + 1 < d {
                let mut next = node.to_vec();
                next[i] += 1;
                out.push(next);
            }
        }
        out
    }

    /// Immediate predecessors: one attribute de-generalized one level.
    pub fn predecessors(&self, node: &[u8]) -> Vec<Node> {
        debug_assert!(self.contains(node));
        let mut out = Vec::new();
        for i in 0..self.dims.len() {
            if node[i] > 0 {
                let mut prev = node.to_vec();
                prev[i] -= 1;
                out.push(prev);
            }
        }
        out
    }

    /// Is `a ≤ b` coordinate-wise (every attribute of `a` at most as
    /// generalized as in `b`)? Reflexive.
    pub fn leq(&self, a: &[u8], b: &[u8]) -> bool {
        debug_assert!(self.contains(a) && self.contains(b));
        a.iter().zip(b).all(|(x, y)| x <= y)
    }

    /// All nodes of a given height, in lexicographic order.
    pub fn nodes_at_height(&self, h: usize) -> Vec<Node> {
        let mut out = Vec::new();
        let mut node = vec![0u8; self.dims.len()];
        self.fill_height(0, h, &mut node, &mut out);
        out
    }

    fn fill_height(&self, attr: usize, remaining: usize, node: &mut Node, out: &mut Vec<Node>) {
        if attr == self.dims.len() {
            if remaining == 0 {
                out.push(node.clone());
            }
            return;
        }
        // max the remaining attributes can still absorb; prunes dead branches
        let tail_capacity: usize = self.dims[attr + 1..].iter().map(|&d| d - 1).sum();
        let max_here = (self.dims[attr] - 1).min(remaining);
        let min_here = remaining.saturating_sub(tail_capacity);
        for l in min_here..=max_here {
            node[attr] = l as u8;
            self.fill_height(attr + 1, remaining - l, node, out);
        }
        node[attr] = 0;
    }

    /// Every node, iterated bottom-up by height (the order breadth-first
    /// anonymization sweeps use).
    pub fn nodes_bottom_up(&self) -> impl Iterator<Item = Node> + '_ {
        (0..=self.max_height()).flat_map(move |h| self.nodes_at_height(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice {
        Lattice::new(vec![3, 2, 4]).unwrap()
    }

    #[test]
    fn construction_guards() {
        assert!(Lattice::new(vec![]).is_err());
        assert!(Lattice::new(vec![3, 0]).is_err());
        assert!(Lattice::new(vec![300]).is_err());
        assert!(Lattice::new(vec![1]).is_ok()); // identity-only hierarchy
    }

    #[test]
    fn counts_and_extremes() {
        let l = lat();
        assert_eq!(l.n_nodes(), 24);
        assert_eq!(l.bottom(), vec![0, 0, 0]);
        assert_eq!(l.top(), vec![2, 1, 3]);
        assert_eq!(l.max_height(), 6);
        assert_eq!(l.height(&l.top()), 6);
        assert_eq!(l.height(&l.bottom()), 0);
    }

    #[test]
    fn successors_and_predecessors_are_inverse() {
        let l = lat();
        let node = vec![1u8, 0, 2];
        for succ in l.successors(&node) {
            assert!(l.contains(&succ));
            assert!(l.predecessors(&succ).contains(&node));
            assert_eq!(l.height(&succ), l.height(&node) + 1);
        }
        assert_eq!(l.successors(&l.top()), Vec::<Node>::new());
        assert_eq!(l.predecessors(&l.bottom()), Vec::<Node>::new());
    }

    #[test]
    fn heights_partition_the_lattice() {
        let l = lat();
        let total: usize = (0..=l.max_height())
            .map(|h| l.nodes_at_height(h).len())
            .sum();
        assert_eq!(total, l.n_nodes());
        for h in 0..=l.max_height() {
            for node in l.nodes_at_height(h) {
                assert!(l.contains(&node));
                assert_eq!(l.height(&node), h);
            }
        }
    }

    #[test]
    fn bottom_up_enumerates_every_node_once() {
        let l = lat();
        let mut seen: Vec<Node> = l.nodes_bottom_up().collect();
        assert_eq!(seen.len(), l.n_nodes());
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), l.n_nodes());
        // heights are non-decreasing along the iteration
        let heights: Vec<usize> = l.nodes_bottom_up().map(|n| l.height(&n)).collect();
        assert!(heights.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn leq_is_coordinatewise() {
        let l = lat();
        assert!(l.leq(&[0, 0, 0], &[2, 1, 3]));
        assert!(l.leq(&[1, 1, 1], &[1, 1, 1]));
        assert!(!l.leq(&[2, 0, 0], &[1, 1, 3]));
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let l = lat();
        assert!(!l.contains(&[3, 0, 0]));
        assert!(!l.contains(&[0, 0]));
        assert!(l.contains(&[2, 1, 3]));
    }

    #[test]
    fn single_attribute_lattice_is_a_chain() {
        let l = Lattice::new(vec![5]).unwrap();
        assert_eq!(l.n_nodes(), 5);
        let nodes: Vec<Node> = l.nodes_bottom_up().collect();
        assert_eq!(nodes, vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
    }
}
