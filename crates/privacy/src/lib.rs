#![warn(missing_docs)]

//! # cdp-privacy
//!
//! Syntactic privacy models and lattice-based anonymization for categorical
//! microdata — the *baseline* family the evolutionary approach of
//! Marés & Torra (PAIS/EDBT 2012) is naturally compared against, and the
//! audit toolkit an agency would run on any file the optimizer emits.
//!
//! The paper scores protections by information loss and disclosure risk
//! (empirical linkage experiments against the original file). This crate
//! adds the complementary *model-based* view used by the anonymization
//! line of work (Samarati; Incognito; OLA; the ARX tool):
//!
//! * [`Partition`] — equivalence classes over quasi-identifiers, the shared
//!   substrate of every model here.
//! * [`models`] — k-anonymity, distinct/entropy l-diversity, t-closeness.
//! * [`risk`] — prosecutor/journalist/marketer re-identification risk.
//! * [`Lattice`] / [`Recoder`] — the full-domain generalization search
//!   space over the workspace's [`cdp_dataset::Hierarchy`] chains, with the
//!   nestedness check that makes k-anonymity monotone.
//! * [`LatticeSearch`] — Samarati's height binary search and a bottom-up
//!   optimal search with predictive tagging, minimizing [`CostKind`]
//!   (discernibility, average class size, or imprecision).
//! * [`mondrian_anonymize`] — Mondrian multidimensional *local* recoding
//!   (LeFevre et al. 2006): per-region generalization, usually far better
//!   utility than full-domain recoding at the same k.
//! * [`report::audit`] — a one-call [`PrivacyReport`] combining everything.
//!
//! ## Quick example
//!
//! ```
//! use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
//! use cdp_privacy::{CostKind, LatticeSearch, Recoder};
//!
//! let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(7));
//! let sub = ds.protected_subtable();
//! let recoder = Recoder::new(&sub, ds.protected_hierarchies()).unwrap();
//! let search = LatticeSearch::new(&sub, &recoder);
//!
//! let outcome = search.optimal(3, CostKind::Discernibility).unwrap();
//! assert!(outcome.achieved_k >= 3);
//! let masked = recoder.apply(&sub, &outcome.node).unwrap();
//! assert_eq!(masked.n_rows(), sub.n_rows());
//! ```

mod cost;
mod error;
mod lattice;
mod mondrian;
mod partition;
mod recode;
mod search;

pub mod models;
pub mod report;
pub mod risk;

pub use cost::{avg_class_size, discernibility, imprecision, CostKind};
pub use error::{PrivacyError, Result};
pub use lattice::{Lattice, Node};
pub use mondrian::{mondrian_anonymize, MondrianStats};
pub use partition::Partition;
pub use recode::{first_non_nested_level, Recoder};
pub use report::{PrivacyReport, SensitiveAudit};
pub use search::{assess_k, LatticeSearch, SearchOutcome};
