//! Syntactic privacy models: k-anonymity, l-diversity, t-closeness.
//!
//! These are *assessments* — given a partition of a (masked) file into
//! equivalence classes, they report the strongest parameter the file
//! satisfies, plus the violation profile an agency would audit. Enforcement
//! (finding a recoding that reaches a target) lives in
//! [`crate::LatticeSearch`] and [`crate::mondrian_anonymize`].

use cdp_dataset::{AttrKind, Attribute, Code};

use crate::partition::Partition;
use crate::{PrivacyError, Result};

/// k-anonymity assessment of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct KAnonymity {
    /// The largest `k` the file satisfies: the minimum class size.
    pub k: usize,
    /// Number of equivalence classes.
    pub n_classes: usize,
    /// Number of singleton classes (records unique on the QIs).
    pub singletons: usize,
    /// Mean class size `n / n_classes`.
    pub mean_class_size: f64,
}

/// Assess k-anonymity from a partition.
pub fn k_anonymity(partition: &Partition) -> KAnonymity {
    let singletons = partition.class_sizes().iter().filter(|&&s| s == 1).count();
    KAnonymity {
        k: partition.min_class_size(),
        n_classes: partition.n_classes(),
        singletons,
        mean_class_size: partition.n_rows() as f64 / partition.n_classes() as f64,
    }
}

/// l-diversity assessment of a partition with respect to one sensitive
/// column.
#[derive(Debug, Clone, PartialEq)]
pub struct LDiversity {
    /// Distinct l-diversity: the minimum, over classes, of the number of
    /// distinct sensitive values present.
    pub distinct_l: usize,
    /// Entropy l-diversity: the minimum over classes of `2^H(S | class)` —
    /// the effective number of sensitive values an intruder must still
    /// choose among.
    pub entropy_l: f64,
}

/// Assess l-diversity. `sensitive` holds the sensitive value of each record
/// (aligned with the partition's rows); `n_sensitive` is that attribute's
/// category count.
///
/// # Errors
/// [`PrivacyError::ShapeMismatch`] when the column length disagrees with the
/// partition, [`PrivacyError::InvalidParam`] on a zero-category dictionary.
pub fn l_diversity(
    partition: &Partition,
    sensitive: &[Code],
    n_sensitive: usize,
) -> Result<LDiversity> {
    if sensitive.len() != partition.n_rows() {
        return Err(PrivacyError::ShapeMismatch {
            what: "sensitive column vs partition".into(),
            left: sensitive.len(),
            right: partition.n_rows(),
        });
    }
    if n_sensitive == 0 {
        return Err(PrivacyError::InvalidParam(
            "sensitive attribute has no categories".into(),
        ));
    }
    let mut distinct_l = usize::MAX;
    let mut entropy_l = f64::INFINITY;
    let mut counts = vec![0usize; n_sensitive];
    for class in partition.classes() {
        counts.iter_mut().for_each(|c| *c = 0);
        for &row in &class {
            counts[sensitive[row] as usize] += 1;
        }
        let total = class.len() as f64;
        let distinct = counts.iter().filter(|&&c| c > 0).count();
        let entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum();
        distinct_l = distinct_l.min(distinct);
        entropy_l = entropy_l.min(entropy.exp2());
    }
    Ok(LDiversity {
        distinct_l,
        entropy_l,
    })
}

/// t-closeness assessment of a partition with respect to one sensitive
/// column.
#[derive(Debug, Clone, PartialEq)]
pub struct TCloseness {
    /// The smallest `t` the file satisfies: the maximum, over classes, of
    /// the distance between the class-conditional sensitive distribution
    /// and the global one. In `[0, 1]`.
    pub t: f64,
}

/// Assess t-closeness. Distances follow Li et al.'s original proposal: the
/// ordered (Earth Mover's) distance for ordinal attributes, total variation
/// distance for nominal ones.
///
/// # Errors
/// Same contract as [`l_diversity`].
pub fn t_closeness(
    partition: &Partition,
    sensitive: &[Code],
    attr: &Attribute,
) -> Result<TCloseness> {
    let c = attr.n_categories();
    if sensitive.len() != partition.n_rows() {
        return Err(PrivacyError::ShapeMismatch {
            what: "sensitive column vs partition".into(),
            left: sensitive.len(),
            right: partition.n_rows(),
        });
    }
    if c == 0 {
        return Err(PrivacyError::InvalidParam(
            "sensitive attribute has no categories".into(),
        ));
    }
    let n = sensitive.len() as f64;
    let mut global = vec![0f64; c];
    for &v in sensitive {
        global[v as usize] += 1.0;
    }
    global.iter_mut().for_each(|g| *g /= n);

    let mut t = 0f64;
    let mut local = vec![0f64; c];
    for class in partition.classes() {
        local.iter_mut().for_each(|l| *l = 0.0);
        for &row in &class {
            local[sensitive[row] as usize] += 1.0;
        }
        let total = class.len() as f64;
        local.iter_mut().for_each(|l| *l /= total);
        let d = match attr.kind() {
            AttrKind::Ordinal => ordered_distance(&local, &global),
            AttrKind::Nominal => total_variation(&local, &global),
        };
        t = t.max(d);
    }
    Ok(TCloseness { t })
}

/// Ordered (1-D Earth Mover's) distance between two distributions over the
/// same ordinal support: `Σ_i |Σ_{j≤i} (p_j − q_j)| / (c − 1)`.
fn ordered_distance(p: &[f64], q: &[f64]) -> f64 {
    let c = p.len();
    if c <= 1 {
        return 0.0;
    }
    let mut cum = 0.0;
    let mut sum = 0.0;
    for i in 0..c {
        cum += p[i] - q[i];
        sum += cum.abs();
    }
    sum / (c - 1) as f64
}

/// Total variation distance `max_A |P(A) − Q(A)| = Σ|p−q| / 2`.
fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Schema, SubTable};
    use std::sync::Arc;

    fn partition(columns: Vec<Vec<Code>>) -> Partition {
        let attrs = (0..columns.len())
            .map(|i| Attribute::nominal(format!("Q{i}"), 8))
            .collect();
        let schema = Arc::new(Schema::new(attrs).unwrap());
        let sub = SubTable::new(schema, (0..columns.len()).collect(), columns).unwrap();
        Partition::of_subtable(&sub).unwrap()
    }

    #[test]
    fn k_anonymity_reports_profile() {
        // classes: {0,1,2}, {3,4}, {5}
        let p = partition(vec![vec![0, 0, 0, 1, 1, 2]]);
        let ka = k_anonymity(&p);
        assert_eq!(ka.k, 1);
        assert_eq!(ka.n_classes, 3);
        assert_eq!(ka.singletons, 1);
        assert!((ka.mean_class_size - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_l_is_min_over_classes() {
        // class A = rows 0..3 with sensitive {0,1,2}; class B = rows 3..6 with {0,0,0}
        let p = partition(vec![vec![0, 0, 0, 1, 1, 1]]);
        let sensitive = vec![0, 1, 2, 0, 0, 0];
        let ld = l_diversity(&p, &sensitive, 4).unwrap();
        assert_eq!(ld.distinct_l, 1);
        // entropy of class B is 0 bits -> effective 1 value
        assert!((ld.entropy_l - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_l_of_uniform_class() {
        let p = partition(vec![vec![0, 0, 0, 0]]);
        let sensitive = vec![0, 1, 2, 3];
        let ld = l_diversity(&p, &sensitive, 4).unwrap();
        assert_eq!(ld.distinct_l, 4);
        assert!((ld.entropy_l - 4.0).abs() < 1e-9);
    }

    #[test]
    fn l_diversity_shape_checks() {
        let p = partition(vec![vec![0, 0]]);
        assert!(l_diversity(&p, &[0], 4).is_err());
        assert!(l_diversity(&p, &[0, 1], 0).is_err());
    }

    #[test]
    fn t_closeness_zero_when_classes_mirror_global() {
        // two classes, each with sensitive distribution {0,1}
        let p = partition(vec![vec![0, 0, 1, 1]]);
        let sensitive = vec![0, 1, 0, 1];
        let attr = Attribute::nominal("S", 2);
        let tc = t_closeness(&p, &sensitive, &attr).unwrap();
        assert!(tc.t < 1e-12);
    }

    #[test]
    fn t_closeness_maximal_when_classes_are_pure() {
        // global = 50/50, each class pure -> TVD = 0.5
        let p = partition(vec![vec![0, 0, 1, 1]]);
        let sensitive = vec![0, 0, 1, 1];
        let attr = Attribute::nominal("S", 2);
        let tc = t_closeness(&p, &sensitive, &attr).unwrap();
        assert!((tc.t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ordinal_distance_weights_how_far_mass_moves() {
        // For an ordinal attribute, shifting mass one step is cheaper than
        // shifting it across the whole range.
        let attr = Attribute::ordinal("S", 3);
        let p = partition(vec![vec![0, 0, 1, 1]]);
        // global: half 0, half 2. class A pure 0, class B pure 2.
        let far = t_closeness(&p, &[0, 0, 2, 2], &attr).unwrap();
        // global: half 0, half 1. class A pure 0, class B pure 1.
        let near = t_closeness(&p, &[0, 0, 1, 1], &attr).unwrap();
        assert!(near.t < far.t, "near {} !< far {}", near.t, far.t);
    }

    #[test]
    fn ordered_distance_basics() {
        assert_eq!(ordered_distance(&[1.0], &[1.0]), 0.0);
        // all mass moves from one end to the other of a 2-point support
        assert!((ordered_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        // 3-point support: end-to-end move costs 1.0 after the 1/(c-1) scale
        assert!((ordered_distance(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_basics() {
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((total_variation(&[0.75, 0.25], &[0.25, 0.75]) - 0.5).abs() < 1e-12);
    }
}
