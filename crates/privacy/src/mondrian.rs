//! Mondrian multidimensional partitioning (LeFevre et al., ICDE 2006),
//! adapted to categorical data: the *local recoding* counterpart of the
//! full-domain lattice search.
//!
//! The lattice applies one generalization level per attribute to the whole
//! file; Mondrian instead recursively cuts the record set into regions and
//! generalizes each region independently, so dense regions keep fine
//! values while sparse ones coarsen. The usual result is markedly better
//! utility at the same k — measured against the lattice in the `ext-kanon`
//! experiment.
//!
//! Adaptation notes:
//! * **Strict partitioning**: a cut never separates records sharing the
//!   cut attribute's value, so classes are value-definable.
//! * **Cut choice**: the attribute with the most distinct values inside
//!   the region (normalized by dictionary size) is cut at the value
//!   boundary closest to the median record; both sides must keep ≥ k
//!   records.
//! * **Recoding with representative labeling**: each final region maps
//!   every attribute to a member category (median member for ordinal
//!   attributes, modal for nominal), keeping the output inside the
//!   original dictionaries — the workspace-wide domain-closure invariant.
//!   Note the *same* original value may map differently in different
//!   regions (that is what "local" buys).

use cdp_dataset::{AttrKind, Code, SubTable};

use crate::partition::Partition;
use crate::{PrivacyError, Result};

/// Outcome statistics of a Mondrian run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MondrianStats {
    /// Number of final regions (equivalence classes).
    pub n_classes: usize,
    /// Number of cuts performed.
    pub cuts: usize,
    /// The k the output actually achieves (≥ the requested k).
    pub achieved_k: usize,
}

/// Anonymize by Mondrian local recoding: the output is k-anonymous on the
/// sub-table's attributes.
///
/// # Errors
/// [`PrivacyError::InvalidParam`] when `k < 2` or `k > n`.
pub fn mondrian_anonymize(sub: &SubTable, k: usize) -> Result<(SubTable, MondrianStats)> {
    let n = sub.n_rows();
    if k < 2 {
        return Err(PrivacyError::InvalidParam(format!(
            "Mondrian needs k >= 2, got {k}"
        )));
    }
    if k > n {
        return Err(PrivacyError::InvalidParam(format!(
            "k = {k} exceeds the number of records ({n})"
        )));
    }
    let a = sub.n_attrs();

    // recursive strict-median cuts
    let mut regions: Vec<Vec<u32>> = Vec::new();
    let mut stack: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
    let mut cuts = 0usize;
    while let Some(region) = stack.pop() {
        match best_cut(sub, &region, k) {
            Some((left, right)) => {
                cuts += 1;
                stack.push(left);
                stack.push(right);
            }
            None => regions.push(region),
        }
    }

    // local recoding: per-region representative per attribute
    let mut columns: Vec<Vec<Code>> = (0..a).map(|j| sub.column(j).to_vec()).collect();
    for region in &regions {
        for (j, col) in columns.iter_mut().enumerate() {
            let repr = representative(sub, region, j);
            for &r in region {
                col[r as usize] = repr;
            }
        }
    }
    let masked = SubTable::new(
        std::sync::Arc::clone(sub.schema()),
        sub.attr_indices().to_vec(),
        columns,
    )?;
    let achieved_k = Partition::of_subtable(&masked)?.min_class_size();
    Ok((
        masked,
        MondrianStats {
            n_classes: regions.len(),
            cuts,
            achieved_k,
        },
    ))
}

/// The best allowable cut of a region, or `None` when the region is final.
/// Attributes are ranked by relative width (distinct values / dictionary
/// size); the cut splits the region at the value boundary nearest the
/// median record with both sides ≥ k.
fn best_cut(sub: &SubTable, region: &[u32], k: usize) -> Option<(Vec<u32>, Vec<u32>)> {
    if region.len() < 2 * k {
        return None;
    }
    let a = sub.n_attrs();
    let mut order: Vec<usize> = (0..a).collect();
    let width = |j: usize| -> f64 {
        let mut seen = vec![false; sub.attr(j).n_categories()];
        let mut distinct = 0usize;
        for &r in region {
            let v = sub.get(r as usize, j) as usize;
            if !seen[v] {
                seen[v] = true;
                distinct += 1;
            }
        }
        distinct as f64 / sub.attr(j).n_categories() as f64
    };
    order.sort_by(|&x, &y| width(y).partial_cmp(&width(x)).expect("finite widths"));

    for j in order {
        if let Some(split) = strict_median_cut(sub, region, j, k) {
            return Some(split);
        }
    }
    None
}

/// Cut `region` on attribute `j` between two distinct values, as close to
/// the median as the strictness constraint allows. Returns `None` when no
/// boundary leaves ≥ k records on both sides.
fn strict_median_cut(
    sub: &SubTable,
    region: &[u32],
    j: usize,
    k: usize,
) -> Option<(Vec<u32>, Vec<u32>)> {
    // counts per value, then prefix sums over the value order
    let c = sub.attr(j).n_categories();
    let mut counts = vec![0usize; c];
    for &r in region {
        counts[sub.get(r as usize, j) as usize] += 1;
    }
    let total = region.len();
    // candidate boundaries: after value v, left = prefix(v); feasible when
    // k <= left <= total - k; choose the boundary closest to total/2
    let mut best: Option<(usize, usize)> = None; // (boundary value, left count)
    let mut prefix = 0usize;
    for (v, &count) in counts.iter().enumerate() {
        prefix += count;
        if count == 0 || prefix == total {
            continue;
        }
        if prefix >= k && total - prefix >= k {
            let better = match best {
                None => true,
                Some((_, left)) => {
                    (prefix as i64 - total as i64 / 2).abs()
                        < (left as i64 - total as i64 / 2).abs()
                }
            };
            if better {
                best = Some((v, prefix));
            }
        }
    }
    let (boundary, left_count) = best?;
    let mut left = Vec::with_capacity(left_count);
    let mut right = Vec::with_capacity(total - left_count);
    for &r in region {
        if (sub.get(r as usize, j) as usize) <= boundary {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    Some((left, right))
}

/// Member representative of a region on attribute `j`: the median member
/// (by code order) for ordinal attributes, the modal member for nominal
/// ones.
fn representative(sub: &SubTable, region: &[u32], j: usize) -> Code {
    let c = sub.attr(j).n_categories();
    let mut counts = vec![0usize; c];
    for &r in region {
        counts[sub.get(r as usize, j) as usize] += 1;
    }
    match sub.attr(j).kind() {
        AttrKind::Ordinal => {
            let half = (region.len() - 1) / 2;
            let mut seen = 0usize;
            for (v, &count) in counts.iter().enumerate() {
                seen += count;
                if count > 0 && seen > half {
                    return v as Code;
                }
            }
            0
        }
        AttrKind::Nominal => counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &count)| count)
            .map(|(v, _)| v as Code)
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Schema, SubTable};
    use std::sync::Arc;

    fn sub(columns: Vec<Vec<Code>>, cats: usize) -> SubTable {
        let attrs = (0..columns.len())
            .map(|i| Attribute::ordinal(format!("Q{i}"), cats))
            .collect();
        let schema = Arc::new(Schema::new(attrs).unwrap());
        SubTable::new(schema, (0..columns.len()).collect(), columns).unwrap()
    }

    #[test]
    fn output_is_k_anonymous() {
        let data = sub(
            vec![
                (0..16).map(|i| (i % 8) as Code).collect(),
                (0..16).map(|i| (i / 2) as Code).collect(),
            ],
            8,
        );
        for k in [2usize, 3, 5, 8] {
            let (masked, stats) = mondrian_anonymize(&data, k).unwrap();
            masked.validate().unwrap();
            assert!(
                stats.achieved_k >= k,
                "k = {k}: achieved only {}",
                stats.achieved_k
            );
            assert_eq!(
                Partition::of_subtable(&masked).unwrap().min_class_size(),
                stats.achieved_k
            );
        }
    }

    #[test]
    fn parameter_guards() {
        let data = sub(vec![vec![0, 1, 2, 3]], 8);
        assert!(mondrian_anonymize(&data, 1).is_err());
        assert!(mondrian_anonymize(&data, 5).is_err());
    }

    #[test]
    fn no_cut_possible_collapses_to_one_region() {
        let data = sub(vec![vec![0, 1, 2]], 8);
        let (masked, stats) = mondrianize(&data, 2);
        assert_eq!(stats.n_classes, 1);
        assert_eq!(stats.cuts, 0);
        assert_eq!(stats.achieved_k, 3);
        // one region, ordinal median member = 1
        assert!(masked.column(0).iter().all(|&v| v == 1));
    }

    fn mondrianize(data: &SubTable, k: usize) -> (SubTable, MondrianStats) {
        mondrian_anonymize(data, k).unwrap()
    }

    #[test]
    fn cuts_preserve_k_on_both_sides() {
        // 10 records over one attribute with clean halves
        let data = sub(vec![vec![0, 0, 0, 0, 0, 7, 7, 7, 7, 7]], 8);
        let (masked, stats) = mondrianize(&data, 5);
        assert_eq!(stats.n_classes, 2);
        assert_eq!(stats.cuts, 1);
        // each region collapses onto its median member
        assert_eq!(&masked.column(0)[..5], &[0, 0, 0, 0, 0]);
        assert_eq!(&masked.column(0)[5..], &[7, 7, 7, 7, 7]);
    }

    #[test]
    fn strict_cut_never_splits_a_value() {
        // 6 copies of value 3 and 2 of value 5: k = 4 cannot cut (6/2 split
        // would need to divide the 3s)
        let data = sub(vec![vec![3, 3, 3, 3, 3, 3, 5, 5]], 8);
        let (_, stats) = mondrianize(&data, 4);
        assert_eq!(stats.n_classes, 1, "strictness forbids splitting ties");
    }

    #[test]
    fn local_recoding_beats_global_on_class_count() {
        // two dense clusters + noise: local recoding should produce more
        // classes (finer data) than collapsing everything
        let mut col0 = Vec::new();
        let mut col1 = Vec::new();
        for i in 0..40 {
            col0.push((i % 4) as Code); // cluster A values 0..3
            col1.push((4 + i % 4) as Code); // cluster B values 4..7
        }
        let data = sub(vec![col0, col1], 8);
        let (_, stats) = mondrianize(&data, 4);
        assert!(stats.n_classes > 1, "mondrian should keep local structure");
    }

    #[test]
    fn nominal_representative_is_mode() {
        let attrs = vec![Attribute::nominal("N", 4)];
        let schema = Arc::new(Schema::new(attrs).unwrap());
        let data = SubTable::new(schema, vec![0], vec![vec![2, 2, 2, 1]]).unwrap();
        let (masked, _) = mondrian_anonymize(&data, 2).unwrap();
        assert!(masked.column(0).iter().all(|&v| v == 2));
    }
}
