//! Equivalence-class partitions: the backbone of every syntactic privacy
//! model.
//!
//! Two records belong to the same *equivalence class* when they agree on all
//! quasi-identifier columns. k-anonymity, l-diversity, t-closeness and the
//! re-identification risk models are all functions of this partition (plus,
//! for the diversity models, a sensitive column), so it is computed once and
//! shared.
//!
//! Construction is sort-based — O(n log n) comparisons of small code
//! vectors — which beats hashing for the short, low-cardinality keys of this
//! domain and needs no collision handling.

use cdp_dataset::{Code, SubTable};

use crate::{PrivacyError, Result};

/// An equivalence-class partition of `n` records.
///
/// Class ids are dense in `0..n_classes()`, assigned in ascending key order,
/// so partitions of the same data are canonical and comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    class_of: Vec<u32>,
    class_sizes: Vec<u32>,
}

impl Partition {
    /// Partition the rows of a sub-table by exact agreement on all of its
    /// columns (every column is treated as a quasi-identifier).
    ///
    /// # Errors
    /// [`PrivacyError::Empty`] when the sub-table has no rows.
    pub fn of_subtable(sub: &SubTable) -> Result<Self> {
        let columns: Vec<&[Code]> = (0..sub.n_attrs()).map(|k| sub.column(k)).collect();
        Partition::of_columns(&columns)
    }

    /// Partition rows by agreement on the *recoded* values
    /// `maps[k][sub[r][k]]` — used by the lattice search to test a
    /// generalization node without materializing the recoded table.
    ///
    /// `maps[k]` must cover the dictionary of column `k`.
    ///
    /// # Errors
    /// [`PrivacyError::Empty`] on empty input,
    /// [`PrivacyError::ShapeMismatch`] when `maps` and the sub-table
    /// disagree on the number of columns.
    pub fn of_mapped(sub: &SubTable, maps: &[&[Code]]) -> Result<Self> {
        if maps.len() != sub.n_attrs() {
            return Err(PrivacyError::ShapeMismatch {
                what: "recode maps vs sub-table columns".into(),
                left: maps.len(),
                right: sub.n_attrs(),
            });
        }
        let n = sub.n_rows();
        if n == 0 {
            return Err(PrivacyError::Empty("sub-table rows".into()));
        }
        let a = sub.n_attrs();
        let mut keys: Vec<Vec<Code>> = Vec::with_capacity(n);
        for r in 0..n {
            let mut key = Vec::with_capacity(a);
            for (k, map) in maps.iter().enumerate() {
                key.push(map[sub.get(r, k) as usize]);
            }
            keys.push(key);
        }
        Ok(Partition::from_keys(keys))
    }

    /// Partition rows by agreement on the given columns (all must share one
    /// length).
    ///
    /// # Errors
    /// [`PrivacyError::Empty`] when no columns or no rows are given,
    /// [`PrivacyError::ShapeMismatch`] on ragged columns.
    pub fn of_columns(columns: &[&[Code]]) -> Result<Self> {
        if columns.is_empty() {
            return Err(PrivacyError::Empty("quasi-identifier columns".into()));
        }
        let n = columns[0].len();
        if n == 0 {
            return Err(PrivacyError::Empty("records".into()));
        }
        for col in columns.iter().skip(1) {
            if col.len() != n {
                return Err(PrivacyError::ShapeMismatch {
                    what: "quasi-identifier columns".into(),
                    left: n,
                    right: col.len(),
                });
            }
        }
        let keys: Vec<Vec<Code>> = (0..n)
            .map(|r| columns.iter().map(|col| col[r]).collect())
            .collect();
        Ok(Partition::from_keys(keys))
    }

    fn from_keys(keys: Vec<Vec<Code>>) -> Self {
        let n = keys.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&i, &j| keys[i as usize].cmp(&keys[j as usize]));

        let mut class_of = vec![0u32; n];
        let mut class_sizes = Vec::new();
        let mut i = 0usize;
        while i < n {
            let mut j = i + 1;
            while j < n && keys[order[j] as usize] == keys[order[i] as usize] {
                j += 1;
            }
            let id = class_sizes.len() as u32;
            for &row in &order[i..j] {
                class_of[row as usize] = id;
            }
            class_sizes.push((j - i) as u32);
            i = j;
        }
        Partition {
            class_of,
            class_sizes,
        }
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.class_of.len()
    }

    /// Number of equivalence classes.
    pub fn n_classes(&self) -> usize {
        self.class_sizes.len()
    }

    /// Class id of a record.
    pub fn class_of(&self, row: usize) -> usize {
        self.class_of[row] as usize
    }

    /// Size of each class, indexed by class id.
    pub fn class_sizes(&self) -> &[u32] {
        &self.class_sizes
    }

    /// Size of the class the given record belongs to.
    pub fn class_size_of(&self, row: usize) -> usize {
        self.class_sizes[self.class_of[row] as usize] as usize
    }

    /// The smallest class size — the `k` the data actually achieves.
    pub fn min_class_size(&self) -> usize {
        self.class_sizes
            .iter()
            .copied()
            .min()
            .map(|s| s as usize)
            .unwrap_or(0)
    }

    /// The records of every class, as row-index lists ordered by class id.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = self
            .class_sizes
            .iter()
            .map(|&s| Vec::with_capacity(s as usize))
            .collect();
        for (row, &cls) in self.class_of.iter().enumerate() {
            out[cls as usize].push(row);
        }
        out
    }

    /// Histogram of class sizes: `(size, number of classes of that size)`,
    /// ascending in size. Useful for risk audits ("how many singletons?").
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        let mut sorted: Vec<u32> = self.class_sizes.clone();
        sorted.sort_unstable();
        let mut out: Vec<(usize, usize)> = Vec::new();
        for &s in &sorted {
            match out.last_mut() {
                Some((size, count)) if *size == s as usize => *count += 1,
                _ => out.push((s as usize, 1)),
            }
        }
        out
    }

    /// Number of records in classes smaller than `k`.
    pub fn records_below(&self, k: usize) -> usize {
        self.class_sizes
            .iter()
            .filter(|&&s| (s as usize) < k)
            .map(|&s| s as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Schema, SubTable};
    use std::sync::Arc;

    fn sub(columns: Vec<Vec<Code>>) -> SubTable {
        let attrs = (0..columns.len())
            .map(|i| Attribute::nominal(format!("Q{i}"), 8))
            .collect();
        let schema = Arc::new(Schema::new(attrs).unwrap());
        SubTable::new(schema, (0..columns.len()).collect(), columns).unwrap()
    }

    #[test]
    fn groups_identical_rows() {
        // rows: (0,0) (0,0) (1,2) (1,2) (1,3)
        let s = sub(vec![vec![0, 0, 1, 1, 1], vec![0, 0, 2, 2, 3]]);
        let p = Partition::of_subtable(&s).unwrap();
        assert_eq!(p.n_classes(), 3);
        assert_eq!(p.min_class_size(), 1);
        assert_eq!(p.class_of(0), p.class_of(1));
        assert_eq!(p.class_of(2), p.class_of(3));
        assert_ne!(p.class_of(3), p.class_of(4));
        assert_eq!(p.class_size_of(4), 1);
    }

    #[test]
    fn class_ids_are_canonical_key_order() {
        let s = sub(vec![vec![3, 0, 3, 0]]);
        let p = Partition::of_subtable(&s).unwrap();
        // key 0 sorts before key 3, so rows 1,3 get class 0
        assert_eq!(p.class_of(1), 0);
        assert_eq!(p.class_of(0), 1);
    }

    #[test]
    fn sizes_sum_to_n() {
        let s = sub(vec![vec![0, 1, 2, 0, 1, 2, 7], vec![1, 1, 1, 1, 2, 2, 2]]);
        let p = Partition::of_subtable(&s).unwrap();
        let total: u32 = p.class_sizes().iter().sum();
        assert_eq!(total as usize, p.n_rows());
    }

    #[test]
    fn mapped_partition_merges_classes() {
        let s = sub(vec![vec![0, 1, 2, 3]]);
        let identity: Vec<Code> = (0..8).collect();
        let fine = Partition::of_mapped(&s, &[&identity]).unwrap();
        assert_eq!(fine.n_classes(), 4);
        // map everything to 0 -> one class
        let coarse_map = vec![0 as Code; 8];
        let coarse = Partition::of_mapped(&s, &[coarse_map.as_slice()]).unwrap();
        assert_eq!(coarse.n_classes(), 1);
        assert_eq!(coarse.min_class_size(), 4);
    }

    #[test]
    fn mapped_rejects_wrong_arity() {
        let s = sub(vec![vec![0, 1]]);
        let m: Vec<Code> = (0..8).collect();
        assert!(Partition::of_mapped(&s, &[&m, &m]).is_err());
    }

    #[test]
    fn of_columns_rejects_ragged_and_empty() {
        let a = vec![0 as Code, 1];
        let b = vec![0 as Code];
        assert!(Partition::of_columns(&[&a, &b]).is_err());
        assert!(Partition::of_columns(&[]).is_err());
        let empty: Vec<Code> = vec![];
        assert!(Partition::of_columns(&[empty.as_slice()]).is_err());
    }

    #[test]
    fn histogram_and_records_below() {
        let s = sub(vec![vec![0, 0, 0, 1, 1, 2]]);
        let p = Partition::of_subtable(&s).unwrap();
        assert_eq!(p.size_histogram(), vec![(1, 1), (2, 1), (3, 1)]);
        assert_eq!(p.records_below(2), 1); // the singleton
        assert_eq!(p.records_below(3), 3); // singleton + pair
        assert_eq!(p.records_below(10), 6);
    }

    #[test]
    fn classes_lists_every_row_once() {
        let s = sub(vec![vec![1, 0, 1, 0, 2]]);
        let p = Partition::of_subtable(&s).unwrap();
        let classes = p.classes();
        let mut all: Vec<usize> = classes.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_row_is_one_singleton_class() {
        let s = sub(vec![vec![5]]);
        let p = Partition::of_subtable(&s).unwrap();
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.min_class_size(), 1);
    }
}
