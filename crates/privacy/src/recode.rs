//! Applying lattice nodes to data: full-domain recoding through the
//! attribute hierarchies, plus the nestedness check the searches rely on.

use cdp_dataset::{Code, Hierarchy, SubTable};

use crate::lattice::Lattice;
use crate::{PrivacyError, Result};

/// Verify that a hierarchy's levels are *nested*: whenever two categories
/// share a group at level `ℓ`, they also share one at level `ℓ + 1`.
/// Nestedness makes k-anonymity monotone along lattice edges, which is the
/// property that justifies predictive tagging and Samarati's binary search.
/// Returns the first offending level, or `None` when nested.
pub fn first_non_nested_level(h: &Hierarchy) -> Option<usize> {
    let n_codes = h.level(0).repr_table().len();
    for l in 1..h.n_levels() {
        let prev = h.level(l - 1);
        let cur = h.level(l);
        // group representatives at `prev` must map consistently at `cur`
        let mut group_repr: Vec<Option<Code>> = vec![None; n_codes];
        for code in 0..n_codes as Code {
            let g = prev.map(code) as usize;
            let mapped = cur.map(code);
            match group_repr[g] {
                None => group_repr[g] = Some(mapped),
                Some(expected) if expected != mapped => return Some(l),
                Some(_) => {}
            }
        }
    }
    None
}

/// A set of hierarchies bound to the columns of one sub-table, with the
/// lattice they induce. This is the entry point for recoding and for
/// [`crate::search::LatticeSearch`].
#[derive(Debug, Clone)]
pub struct Recoder<'a> {
    hierarchies: Vec<&'a Hierarchy>,
    lattice: Lattice,
}

impl<'a> Recoder<'a> {
    /// Bind hierarchies to columns (one per column, in column order) and
    /// verify nestedness.
    ///
    /// # Errors
    /// [`PrivacyError::Empty`] with no hierarchies,
    /// [`PrivacyError::NotNested`] when a hierarchy violates nesting (the
    /// attribute is named by position when the sub-table is not available).
    pub fn new(sub: &SubTable, hierarchies: Vec<&'a Hierarchy>) -> Result<Self> {
        if hierarchies.len() != sub.n_attrs() {
            return Err(PrivacyError::ShapeMismatch {
                what: "hierarchies vs sub-table columns".into(),
                left: hierarchies.len(),
                right: sub.n_attrs(),
            });
        }
        for (k, h) in hierarchies.iter().enumerate() {
            if h.level(0).repr_table().len() != sub.attr(k).n_categories() {
                return Err(PrivacyError::ShapeMismatch {
                    what: format!("hierarchy domain for `{}`", sub.attr(k).name()),
                    left: h.level(0).repr_table().len(),
                    right: sub.attr(k).n_categories(),
                });
            }
            if let Some(level) = first_non_nested_level(h) {
                return Err(PrivacyError::NotNested {
                    attribute: sub.attr(k).name().to_string(),
                    level,
                });
            }
        }
        let lattice = Lattice::new(hierarchies.iter().map(|h| h.n_levels()).collect())?;
        Ok(Recoder {
            hierarchies,
            lattice,
        })
    }

    /// The induced lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The bound hierarchies.
    pub fn hierarchies(&self) -> &[&'a Hierarchy] {
        &self.hierarchies
    }

    /// The per-column recode maps of a node (level representative tables),
    /// for partition building without materializing the recoded file.
    ///
    /// # Panics
    /// Panics when `node` is not a member of the lattice (caller bug).
    pub fn maps_of(&self, node: &[u8]) -> Vec<&[Code]> {
        assert!(self.lattice.contains(node), "node outside lattice");
        self.hierarchies
            .iter()
            .zip(node)
            .map(|(h, &l)| h.level(l as usize).repr_table())
            .collect()
    }

    /// Materialize the recoding of `sub` under `node`: every cell is
    /// replaced by its group representative at the node's level. Output
    /// codes stay inside the original dictionaries (the workspace-wide
    /// domain-closure invariant).
    ///
    /// # Errors
    /// Propagates [`PrivacyError::Dataset`] if reassembly fails (cannot
    /// happen for maps produced by valid hierarchies).
    ///
    /// # Panics
    /// Panics when `node` is not a member of the lattice (caller bug).
    pub fn apply(&self, sub: &SubTable, node: &[u8]) -> Result<SubTable> {
        let maps = self.maps_of(node);
        let columns: Vec<Vec<Code>> = (0..sub.n_attrs())
            .map(|k| sub.column(k).iter().map(|&c| maps[k][c as usize]).collect())
            .collect();
        Ok(SubTable::new(
            std::sync::Arc::clone(sub.schema()),
            sub.attr_indices().to_vec(),
            columns,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Hierarchy, Schema, SubTable};
    use std::sync::Arc;

    fn sub() -> SubTable {
        let schema = Arc::new(
            Schema::new(vec![Attribute::ordinal("A", 8), Attribute::ordinal("B", 4)]).unwrap(),
        );
        SubTable::new(
            schema,
            vec![0, 1],
            vec![vec![0, 1, 2, 3, 4, 5, 6, 7], vec![0, 1, 2, 3, 0, 1, 2, 3]],
        )
        .unwrap()
    }

    #[test]
    fn auto_hierarchies_are_nested() {
        for c in [2usize, 5, 8, 16, 21, 25] {
            let attr = Attribute::ordinal("X", c);
            let h = Hierarchy::ordinal_auto(&attr);
            assert_eq!(first_non_nested_level(&h), None, "c = {c}");
        }
    }

    #[test]
    fn nominal_count_hierarchies_are_nested() {
        let attr = Attribute::nominal("X", 7);
        let counts = [40, 25, 12, 9, 8, 4, 2];
        let h = Hierarchy::nominal_from_counts(&attr, &counts).unwrap();
        assert_eq!(first_non_nested_level(&h), None);
    }

    #[test]
    fn detects_non_nested_hierarchy() {
        use cdp_dataset::HierarchyLevel;
        let attr = Attribute::ordinal("X", 4);
        // level 1 groups {0,1} {2,3}; level 2 groups {0,2} {1,3} — crossing
        let levels = vec![
            HierarchyLevel::new(&attr, vec![0, 1, 2, 3]).unwrap(),
            HierarchyLevel::new(&attr, vec![0, 0, 2, 2]).unwrap(),
            HierarchyLevel::new(&attr, vec![0, 1, 0, 1]).unwrap(),
        ];
        let h = Hierarchy::from_levels(&attr, levels).unwrap();
        assert_eq!(first_non_nested_level(&h), Some(2));
    }

    #[test]
    fn recoder_rejects_non_nested_hierarchy() {
        use cdp_dataset::HierarchyLevel;
        let s = sub();
        let attr_b = s.attr(1); // 4 categories
        let crossing = Hierarchy::from_levels(
            attr_b,
            vec![
                HierarchyLevel::new(attr_b, vec![0, 1, 2, 3]).unwrap(),
                HierarchyLevel::new(attr_b, vec![0, 0, 2, 2]).unwrap(),
                HierarchyLevel::new(attr_b, vec![0, 1, 0, 1]).unwrap(),
            ],
        )
        .unwrap();
        let ha = Hierarchy::ordinal_auto(s.attr(0));
        let err = Recoder::new(&s, vec![&ha, &crossing]).unwrap_err();
        assert!(err.to_string().contains("not nested"));
    }

    #[test]
    fn recoder_binds_and_builds_lattice() {
        let s = sub();
        let ha = Hierarchy::ordinal_auto(s.attr(0)); // 8 cats: levels 0..4
        let hb = Hierarchy::ordinal_auto(s.attr(1)); // 4 cats: levels 0..3
        let r = Recoder::new(&s, vec![&ha, &hb]).unwrap();
        assert_eq!(r.lattice().dims(), &[4, 3]);
        assert_eq!(r.lattice().n_nodes(), 12);
    }

    #[test]
    fn recoder_rejects_wrong_domain() {
        let s = sub();
        let wrong = Hierarchy::ordinal_auto(&Attribute::ordinal("Z", 5));
        let hb = Hierarchy::ordinal_auto(s.attr(1));
        assert!(Recoder::new(&s, vec![&wrong, &hb]).is_err());
        assert!(Recoder::new(&s, vec![&hb]).is_err()); // arity
    }

    #[test]
    fn bottom_node_is_identity() {
        let s = sub();
        let ha = Hierarchy::ordinal_auto(s.attr(0));
        let hb = Hierarchy::ordinal_auto(s.attr(1));
        let r = Recoder::new(&s, vec![&ha, &hb]).unwrap();
        let out = r.apply(&s, &r.lattice().bottom()).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn top_node_collapses_every_column() {
        let s = sub();
        let ha = Hierarchy::ordinal_auto(s.attr(0));
        let hb = Hierarchy::ordinal_auto(s.attr(1));
        let r = Recoder::new(&s, vec![&ha, &hb]).unwrap();
        let out = r.apply(&s, &r.lattice().top()).unwrap();
        for k in 0..out.n_attrs() {
            let col = out.column(k);
            assert!(col.iter().all(|&c| c == col[0]), "column {k} collapsed");
        }
        out.validate().unwrap();
    }

    #[test]
    fn apply_stays_in_domain_at_every_node() {
        let s = sub();
        let ha = Hierarchy::ordinal_auto(s.attr(0));
        let hb = Hierarchy::ordinal_auto(s.attr(1));
        let r = Recoder::new(&s, vec![&ha, &hb]).unwrap();
        for node in r.lattice().nodes_bottom_up() {
            let out = r.apply(&s, &node).unwrap();
            out.validate().unwrap();
        }
    }
}
