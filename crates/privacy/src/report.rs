//! One-call privacy audit of a masked file: every model and risk figure in
//! this crate, formatted the way an agency reviewer would read them.

use std::fmt;

use cdp_dataset::{Attribute, Code, SubTable};

use crate::models::{k_anonymity, l_diversity, t_closeness, KAnonymity, LDiversity, TCloseness};
use crate::partition::Partition;
use crate::risk::{journalist_risk, prosecutor_risk, JournalistRisk, ProsecutorRisk};
use crate::Result;

/// A complete privacy audit of one masked file.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyReport {
    /// k-anonymity profile over the masked quasi-identifiers.
    pub k_anonymity: KAnonymity,
    /// Prosecutor-scenario risk.
    pub prosecutor: ProsecutorRisk,
    /// Journalist-scenario risk against the original file, when provided.
    pub journalist: Option<JournalistRisk>,
    /// l-diversity and t-closeness per audited sensitive attribute,
    /// by attribute name.
    pub sensitive: Vec<SensitiveAudit>,
    /// Differential-privacy budget the masking was calibrated to, when
    /// the protection is an ε-calibrated PRAM (`None` otherwise — the
    /// audit itself cannot derive a budget from the masked file alone).
    pub epsilon: Option<f64>,
}

/// Diversity/closeness figures for one sensitive attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitiveAudit {
    /// Sensitive attribute name.
    pub attribute: String,
    /// l-diversity figures.
    pub l_diversity: LDiversity,
    /// t-closeness figure.
    pub t_closeness: TCloseness,
}

/// Audit a masked file.
///
/// * `masked` — the published quasi-identifier columns.
/// * `original` — the source file's same columns, for journalist risk;
///   pass `None` when the intruder's population register is unavailable.
/// * `sensitive` — `(attribute, column)` pairs of *unpublished-QI* sensitive
///   attributes to audit for diversity within the masked classes.
///
/// # Errors
/// Propagates shape errors from the underlying models.
pub fn audit(
    masked: &SubTable,
    original: Option<&SubTable>,
    sensitive: &[(&Attribute, &[Code])],
) -> Result<PrivacyReport> {
    let partition = Partition::of_subtable(masked)?;
    let mut audits = Vec::with_capacity(sensitive.len());
    for (attr, column) in sensitive {
        audits.push(SensitiveAudit {
            attribute: attr.name().to_string(),
            l_diversity: l_diversity(&partition, column, attr.n_categories())?,
            t_closeness: t_closeness(&partition, column, attr)?,
        });
    }
    Ok(PrivacyReport {
        k_anonymity: k_anonymity(&partition),
        prosecutor: prosecutor_risk(&partition),
        journalist: original
            .map(|orig| journalist_risk(masked, orig))
            .transpose()?,
        sensitive: audits,
        epsilon: None,
    })
}

impl fmt::Display for PrivacyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ka = &self.k_anonymity;
        writeln!(f, "privacy audit")?;
        writeln!(
            f,
            "  k-anonymity        k={} classes={} singletons={} mean-class={:.2}",
            ka.k, ka.n_classes, ka.singletons, ka.mean_class_size
        )?;
        let pr = &self.prosecutor;
        writeln!(
            f,
            "  prosecutor risk    max={:.3} mean={:.3} high-risk={:.1}% E[reident]={:.0}",
            pr.max,
            pr.mean,
            pr.high_risk_fraction * 100.0,
            pr.expected_reidentifications
        )?;
        if let Some(jr) = &self.journalist {
            writeln!(
                f,
                "  journalist risk    max={:.3} mean={:.3} orphans={:.1}%",
                jr.max,
                jr.mean,
                jr.orphan_fraction * 100.0
            )?;
        }
        for s in &self.sensitive {
            writeln!(
                f,
                "  sensitive `{}`    distinct-l={} entropy-l={:.2} t={:.3}",
                s.attribute, s.l_diversity.distinct_l, s.l_diversity.entropy_l, s.t_closeness.t
            )?;
        }
        if let Some(eps) = self.epsilon {
            writeln!(f, "  dp budget          eps={eps:.3} (calibrated PRAM)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Schema, SubTable};
    use std::sync::Arc;

    fn sub(columns: Vec<Vec<Code>>) -> SubTable {
        let attrs = (0..columns.len())
            .map(|i| Attribute::nominal(format!("Q{i}"), 8))
            .collect();
        let schema = Arc::new(Schema::new(attrs).unwrap());
        SubTable::new(schema, (0..columns.len()).collect(), columns).unwrap()
    }

    #[test]
    fn audit_assembles_all_sections() {
        let masked = sub(vec![vec![0, 0, 1, 1, 1, 2]]);
        let original = sub(vec![vec![0, 0, 1, 1, 2, 2]]);
        let sens_attr = Attribute::nominal("DIAG", 3);
        let sens_col: Vec<Code> = vec![0, 1, 0, 1, 2, 0];
        let report = audit(
            &masked,
            Some(&original),
            &[(&sens_attr, sens_col.as_slice())],
        )
        .unwrap();
        assert_eq!(report.k_anonymity.k, 1);
        assert!(report.journalist.is_some());
        assert_eq!(report.sensitive.len(), 1);
        assert_eq!(report.sensitive[0].attribute, "DIAG");
        // the singleton class forces distinct-l = 1
        assert_eq!(report.sensitive[0].l_diversity.distinct_l, 1);
    }

    #[test]
    fn audit_without_population_or_sensitive() {
        let masked = sub(vec![vec![0, 0, 1, 1]]);
        let report = audit(&masked, None, &[]).unwrap();
        assert!(report.journalist.is_none());
        assert!(report.sensitive.is_empty());
        assert_eq!(report.k_anonymity.k, 2);
    }

    #[test]
    fn display_contains_every_section() {
        let masked = sub(vec![vec![0, 0, 1, 1]]);
        let original = masked.clone();
        let sens_attr = Attribute::ordinal("INCOME", 4);
        let sens_col: Vec<Code> = vec![0, 1, 2, 3];
        let report = audit(
            &masked,
            Some(&original),
            &[(&sens_attr, sens_col.as_slice())],
        )
        .unwrap();
        let text = report.to_string();
        assert!(text.contains("k-anonymity"));
        assert!(text.contains("prosecutor risk"));
        assert!(text.contains("journalist risk"));
        assert!(text.contains("INCOME"));
    }

    #[test]
    fn epsilon_is_reported_when_set() {
        let masked = sub(vec![vec![0, 0, 1, 1]]);
        let mut report = audit(&masked, None, &[]).unwrap();
        assert_eq!(report.epsilon, None);
        assert!(!report.to_string().contains("dp budget"));
        report.epsilon = Some(1.25);
        assert!(report.to_string().contains("eps=1.250"));
    }

    #[test]
    fn audit_shape_error_propagates() {
        let masked = sub(vec![vec![0, 0, 1, 1]]);
        let sens_attr = Attribute::nominal("S", 2);
        let short: Vec<Code> = vec![0, 1]; // wrong length
        assert!(audit(&masked, None, &[(&sens_attr, short.as_slice())]).is_err());
    }
}
