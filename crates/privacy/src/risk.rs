//! Re-identification risk under the standard attacker scenarios.
//!
//! * **Prosecutor** — the intruder knows their target *is in the file* and
//!   links it to a uniformly chosen member of the matching equivalence
//!   class. Per-record risk is `1 / class size`.
//! * **Journalist** — the intruder only knows the target belongs to the
//!   *population* the file was drawn from; risk is `1 / F` where `F` is the
//!   size of the matching class in the population file.
//! * **Marketer** — the intruder links *every* record and profits from each
//!   correct link; the relevant figure is the expected number of correct
//!   links, `Σ_records 1/class size = number of classes`.
//!
//! These complement the paper's four DR measures: the DR measures model
//! concrete linkage algorithms against the *original* file, while these
//! model attacker knowledge levels from class-size structure alone.

use cdp_dataset::{Code, SubTable};

use crate::partition::Partition;
use crate::{PrivacyError, Result};

/// Prosecutor-scenario risk profile of a masked file.
#[derive(Debug, Clone, PartialEq)]
pub struct ProsecutorRisk {
    /// Maximum per-record risk, `1 / min class size`. In `(0, 1]`.
    pub max: f64,
    /// Mean per-record risk, `n_classes / n`.
    pub mean: f64,
    /// Fraction of records with risk above 0.2 (class size < 5), the
    /// conventional "high risk" audit threshold.
    pub high_risk_fraction: f64,
    /// Expected number of correct re-identifications when the intruder
    /// links every record (the marketer figure): equals the class count.
    pub expected_reidentifications: f64,
}

/// Assess prosecutor risk from a partition of the masked file.
pub fn prosecutor_risk(partition: &Partition) -> ProsecutorRisk {
    let n = partition.n_rows() as f64;
    let high = partition.records_below(5) as f64;
    ProsecutorRisk {
        max: 1.0 / partition.min_class_size() as f64,
        mean: partition.n_classes() as f64 / n,
        high_risk_fraction: high / n,
        expected_reidentifications: partition.n_classes() as f64,
    }
}

/// Journalist-scenario risk profile: masked records measured against the
/// class sizes of a *population* file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalistRisk {
    /// Maximum per-record risk `1 / F` over records whose masked key occurs
    /// in the population.
    pub max: f64,
    /// Mean per-record risk (records whose key vanished from the population
    /// contribute zero — the intruder cannot even locate a candidate set).
    pub mean: f64,
    /// Fraction of masked records whose key no longer exists in the
    /// population at all.
    pub orphan_fraction: f64,
}

/// Assess journalist risk of `masked` against `population` (typically the
/// original file): for each masked record, `F` is the number of population
/// records agreeing with its masked quasi-identifier values.
///
/// # Errors
/// [`PrivacyError::ShapeMismatch`] when the two sub-tables have different
/// column counts, [`PrivacyError::Empty`] on empty inputs.
pub fn journalist_risk(masked: &SubTable, population: &SubTable) -> Result<JournalistRisk> {
    if masked.n_attrs() != population.n_attrs() {
        return Err(PrivacyError::ShapeMismatch {
            what: "masked vs population attribute count".into(),
            left: masked.n_attrs(),
            right: population.n_attrs(),
        });
    }
    let n = masked.n_rows();
    if n == 0 || population.n_rows() == 0 {
        return Err(PrivacyError::Empty("records".into()));
    }
    let a = masked.n_attrs();

    // population key -> frequency, via sort (keys are short code vectors)
    let mut pop_keys: Vec<Vec<Code>> = (0..population.n_rows())
        .map(|r| (0..a).map(|k| population.get(r, k)).collect())
        .collect();
    pop_keys.sort_unstable();

    let count_of = |key: &[Code]| -> usize {
        let lo = pop_keys.partition_point(|k| k.as_slice() < key);
        let hi = pop_keys.partition_point(|k| k.as_slice() <= key);
        hi - lo
    };

    let mut max = 0f64;
    let mut sum = 0f64;
    let mut orphans = 0usize;
    let mut key = Vec::with_capacity(a);
    for r in 0..n {
        key.clear();
        key.extend((0..a).map(|k| masked.get(r, k)));
        let f = count_of(&key);
        if f == 0 {
            orphans += 1;
        } else {
            let risk = 1.0 / f as f64;
            max = max.max(risk);
            sum += risk;
        }
    }
    Ok(JournalistRisk {
        max,
        mean: sum / n as f64,
        orphan_fraction: orphans as f64 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Schema, SubTable};
    use std::sync::Arc;

    fn sub(columns: Vec<Vec<Code>>) -> SubTable {
        let attrs = (0..columns.len())
            .map(|i| Attribute::nominal(format!("Q{i}"), 8))
            .collect();
        let schema = Arc::new(Schema::new(attrs).unwrap());
        SubTable::new(schema, (0..columns.len()).collect(), columns).unwrap()
    }

    #[test]
    fn prosecutor_risk_of_singletons_is_one() {
        let p = Partition::of_subtable(&sub(vec![vec![0, 1, 2, 3]])).unwrap();
        let r = prosecutor_risk(&p);
        assert_eq!(r.max, 1.0);
        assert_eq!(r.mean, 1.0);
        assert_eq!(r.high_risk_fraction, 1.0);
        assert_eq!(r.expected_reidentifications, 4.0);
    }

    #[test]
    fn prosecutor_risk_drops_with_class_size() {
        let p = Partition::of_subtable(&sub(vec![vec![0; 10]])).unwrap();
        let r = prosecutor_risk(&p);
        assert!((r.max - 0.1).abs() < 1e-12);
        assert!((r.mean - 0.1).abs() < 1e-12);
        assert_eq!(r.high_risk_fraction, 0.0);
        assert_eq!(r.expected_reidentifications, 1.0);
    }

    #[test]
    fn high_risk_threshold_counts_small_classes() {
        // one class of 3 (risk 1/3 > 0.2) and one of 7 (risk 1/7 < 0.2)
        let p = Partition::of_subtable(&sub(vec![vec![0, 0, 0, 1, 1, 1, 1, 1, 1, 1]])).unwrap();
        let r = prosecutor_risk(&p);
        assert!((r.high_risk_fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn journalist_matches_population_frequency() {
        // population: key 0 × 4, key 1 × 1
        let population = sub(vec![vec![0, 0, 0, 0, 1]]);
        // masked file: two records with key 0, one with key 1
        let masked = sub(vec![vec![0, 0, 1]]);
        let r = journalist_risk(&masked, &population).unwrap();
        assert_eq!(r.max, 1.0); // key 1 is unique in the population
        assert!((r.mean - (0.25 + 0.25 + 1.0) / 3.0).abs() < 1e-12);
        assert_eq!(r.orphan_fraction, 0.0);
    }

    #[test]
    fn journalist_counts_orphans() {
        let population = sub(vec![vec![0, 0]]);
        let masked = sub(vec![vec![0, 3]]); // key 3 vanished from population
        let r = journalist_risk(&masked, &population).unwrap();
        assert!((r.orphan_fraction - 0.5).abs() < 1e-12);
        assert!((r.mean - 0.25).abs() < 1e-12); // only key-0 record contributes 1/2
    }

    #[test]
    fn journalist_risk_never_exceeds_prosecutor_on_same_file() {
        // when population == masked, journalist F >= prosecutor class size
        // never holds in general, but F == class size here, so risks match
        let file = sub(vec![vec![0, 0, 1, 2, 2, 2]]);
        let p = Partition::of_subtable(&file).unwrap();
        let jr = journalist_risk(&file, &file).unwrap();
        let pr = prosecutor_risk(&p);
        assert!((jr.max - pr.max).abs() < 1e-12);
        assert!((jr.mean - pr.mean).abs() < 1e-12);
    }

    #[test]
    fn journalist_shape_mismatch() {
        let a = sub(vec![vec![0, 1]]);
        let b = sub(vec![vec![0, 1], vec![1, 0]]);
        assert!(journalist_risk(&a, &b).is_err());
    }
}
