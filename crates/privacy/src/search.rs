//! Lattice searches for k-anonymous full-domain recodings — the
//! anonymization baselines the evolutionary approach is compared against.
//!
//! Two classic strategies are implemented:
//!
//! * [`LatticeSearch::samarati_minimal`] — Samarati's binary search on
//!   lattice height: the lowest height holding at least one k-anonymous
//!   node is located in `O(log max_height)` sweeps; all satisfying nodes of
//!   that height are returned.
//! * [`LatticeSearch::optimal`] — a bottom-up breadth-first sweep with
//!   *predictive tagging*: once a node satisfies k-anonymity, every
//!   ancestor is known to satisfy it too (k-anonymity is monotone along
//!   generalization edges when hierarchies are nested, which
//!   [`crate::recode::Recoder::new`] verifies), so ancestors whose cost is
//!   node-determined need no partition computation. Returns the satisfying
//!   node with the smallest cost.
//!
//! Both report how many partitions were actually computed, so the pruning
//! is measurable (see the `privacy` bench).

use cdp_dataset::SubTable;

use crate::cost::CostKind;
use crate::lattice::Node;
use crate::models::k_anonymity;
use crate::partition::Partition;
use crate::recode::Recoder;
use crate::{PrivacyError, Result};

/// Outcome of a lattice search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The chosen node (hierarchy level per attribute).
    pub node: Node,
    /// The k the node actually achieves (≥ the requested k).
    pub achieved_k: usize,
    /// Cost of the node under the requested [`CostKind`].
    pub cost: f64,
    /// Number of nodes whose partition was computed — the search's real
    /// work; smaller is better for equal results.
    pub partitions_computed: usize,
}

/// A k-anonymity search over the recoding lattice of one sub-table.
pub struct LatticeSearch<'a> {
    sub: &'a SubTable,
    recoder: &'a Recoder<'a>,
}

impl<'a> LatticeSearch<'a> {
    /// Bind the search to data and its recoder.
    pub fn new(sub: &'a SubTable, recoder: &'a Recoder<'a>) -> Self {
        LatticeSearch { sub, recoder }
    }

    /// The minimum class size the recoding at `node` achieves.
    pub fn k_of(&self, node: &[u8]) -> Result<usize> {
        let maps = self.recoder.maps_of(node);
        Ok(Partition::of_mapped(self.sub, &maps)?.min_class_size())
    }

    /// Samarati's algorithm: binary-search the lattice height for the
    /// lowest height with a k-anonymous node; return all satisfying nodes
    /// at that height (callers pick by cost or domain preference).
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParam`] when `k < 2` (k = 1 is a no-op) or
    /// `k > n`; [`PrivacyError::Unsatisfiable`] when even the top node
    /// fails (only possible when `k` exceeds the most frequent collapsed
    /// key count).
    pub fn samarati_minimal(&self, k: usize) -> Result<(Vec<Node>, usize)> {
        self.check_k(k)?;
        let lattice = self.recoder.lattice();
        let mut computed = 0usize;

        let satisfying_at = |h: usize, computed: &mut usize| -> Result<Vec<Node>> {
            let mut hits = Vec::new();
            for node in lattice.nodes_at_height(h) {
                *computed += 1;
                if self.k_of(&node)? >= k {
                    hits.push(node);
                }
            }
            Ok(hits)
        };

        // the top must satisfy, else the model is unsatisfiable everywhere
        if self.k_of(&lattice.top())? < k {
            return Err(PrivacyError::Unsatisfiable { k });
        }
        computed += 1;

        let mut lo = 0usize; // highest height known to have no satisfying node, +1
        let mut hi = lattice.max_height(); // height known to have one
        let mut best = vec![lattice.top()];
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let hits = satisfying_at(mid, &mut computed)?;
            if hits.is_empty() {
                lo = mid + 1;
            } else {
                best = hits;
                hi = mid;
            }
        }
        // `best` may be stale when the loop exited via lo == hi without
        // probing `hi` last; re-probe unless hi is where best came from
        if best.first().map(|n| lattice.height(n)) != Some(hi) {
            best = satisfying_at(hi, &mut computed)?;
        }
        Ok((best, computed))
    }

    /// Bottom-up optimal search: among *all* k-anonymous nodes, return the
    /// one minimizing `cost`, using predictive tagging to skip partition
    /// computation for ancestors of known-satisfying nodes whenever the
    /// cost does not need the partition ([`CostKind::Imprecision`]), and to
    /// skip the k-anonymity test (but not the cost) otherwise.
    ///
    /// # Errors
    /// Same contract as [`LatticeSearch::samarati_minimal`].
    pub fn optimal(&self, k: usize, cost: CostKind) -> Result<SearchOutcome> {
        self.check_k(k)?;
        let lattice = self.recoder.lattice();
        let nodes: Vec<Node> = lattice.nodes_bottom_up().collect();
        let index_of = |node: &Node| {
            nodes.binary_search_by(|probe| {
                lattice
                    .height(probe)
                    .cmp(&lattice.height(node))
                    .then_with(|| probe.cmp(node))
            })
        };

        let mut known_k: Vec<Option<bool>> = vec![None; nodes.len()];
        let mut computed = 0usize;
        let mut best: Option<SearchOutcome> = None;

        for (i, node) in nodes.iter().enumerate() {
            let tagged_satisfying = known_k[i] == Some(true);
            let needs_partition = !tagged_satisfying || cost != CostKind::Imprecision;

            let (satisfies, partition) = if needs_partition {
                let maps = self.recoder.maps_of(node);
                let p = Partition::of_mapped(self.sub, &maps)?;
                computed += 1;
                (tagged_satisfying || p.min_class_size() >= k, Some(p))
            } else {
                (true, None)
            };
            known_k[i] = Some(satisfies);

            if satisfies {
                // predictive tagging: every successor chain satisfies too
                let mut stack = lattice.successors(node);
                while let Some(succ) = stack.pop() {
                    if let Ok(j) = index_of(&succ) {
                        if known_k[j] != Some(true) {
                            known_k[j] = Some(true);
                            stack.extend(lattice.successors(&succ));
                        }
                    }
                }
                let c = match cost {
                    CostKind::Imprecision => crate::cost::imprecision(lattice, node),
                    _ => cost.evaluate(
                        lattice,
                        node,
                        partition
                            .as_ref()
                            .expect("partition computed for partition-based costs"),
                        k,
                    ),
                };
                let achieved_k = match &partition {
                    Some(p) => p.min_class_size(),
                    // tagged node whose partition was skipped: `k` is a
                    // sound lower bound (imprecision strictly grows along
                    // edges, so such a node never wins ties anyway)
                    None => k,
                };
                let better = best.as_ref().map(|b| c < b.cost).unwrap_or(true);
                if better {
                    best = Some(SearchOutcome {
                        node: node.clone(),
                        achieved_k,
                        cost: c,
                        partitions_computed: 0, // patched below
                    });
                }
            }
        }

        match best {
            Some(mut outcome) => {
                outcome.partitions_computed = computed;
                Ok(outcome)
            }
            None => Err(PrivacyError::Unsatisfiable { k }),
        }
    }

    fn check_k(&self, k: usize) -> Result<()> {
        if k < 2 {
            return Err(PrivacyError::InvalidParam(format!(
                "k-anonymity needs k >= 2, got {k}"
            )));
        }
        if k > self.sub.n_rows() {
            return Err(PrivacyError::InvalidParam(format!(
                "k = {k} exceeds the number of records ({})",
                self.sub.n_rows()
            )));
        }
        Ok(())
    }
}

/// Convenience wrapper: k-anonymity of a masked sub-table (no recoding).
pub fn assess_k(sub: &SubTable) -> Result<crate::models::KAnonymity> {
    Ok(k_anonymity(&Partition::of_subtable(sub)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::{Attribute, Hierarchy, Schema, SubTable};
    use std::sync::Arc;

    /// 8 records over two ordinal attributes whose identity partition has
    /// singletons but whose level-1 recodings merge neighbours.
    fn setup() -> (SubTable, Vec<Hierarchy>) {
        let schema = Arc::new(
            Schema::new(vec![Attribute::ordinal("A", 8), Attribute::ordinal("B", 4)]).unwrap(),
        );
        let sub = SubTable::new(
            Arc::clone(&schema),
            vec![0, 1],
            vec![vec![0, 1, 2, 3, 4, 5, 6, 7], vec![0, 0, 1, 1, 2, 2, 3, 3]],
        )
        .unwrap();
        let hs = vec![
            Hierarchy::ordinal_auto(schema.attr(0)),
            Hierarchy::ordinal_auto(schema.attr(1)),
        ];
        (sub, hs)
    }

    fn recoder<'a>(sub: &'a SubTable, hs: &'a [Hierarchy]) -> Recoder<'a> {
        Recoder::new(sub, hs.iter().collect()).unwrap()
    }

    #[test]
    fn k_of_bottom_and_top() {
        let (sub, hs) = setup();
        let rec = recoder(&sub, &hs);
        let search = LatticeSearch::new(&sub, &rec);
        assert_eq!(search.k_of(&rec.lattice().bottom()).unwrap(), 1);
        assert_eq!(search.k_of(&rec.lattice().top()).unwrap(), 8);
    }

    #[test]
    fn samarati_finds_lowest_satisfying_height() {
        let (sub, hs) = setup();
        let rec = recoder(&sub, &hs);
        let search = LatticeSearch::new(&sub, &rec);
        let (nodes, _computed) = search.samarati_minimal(2).unwrap();
        assert!(!nodes.is_empty());
        let lattice = rec.lattice();
        let h = lattice.height(&nodes[0]);
        // every returned node satisfies; every node strictly below fails
        for node in &nodes {
            assert_eq!(lattice.height(node), h);
            assert!(search.k_of(node).unwrap() >= 2);
        }
        for lower_h in 0..h {
            for node in lattice.nodes_at_height(lower_h) {
                assert!(
                    search.k_of(&node).unwrap() < 2,
                    "height {lower_h} satisfies"
                );
            }
        }
    }

    #[test]
    fn samarati_agrees_with_exhaustive_scan() {
        let (sub, hs) = setup();
        let rec = recoder(&sub, &hs);
        let search = LatticeSearch::new(&sub, &rec);
        for k in [2usize, 3, 4, 8] {
            let (nodes, _) = search.samarati_minimal(k).unwrap();
            let lattice = rec.lattice();
            let min_h_exhaustive = lattice
                .nodes_bottom_up()
                .filter(|n| search.k_of(n).unwrap() >= k)
                .map(|n| lattice.height(&n))
                .min()
                .unwrap();
            assert_eq!(lattice.height(&nodes[0]), min_h_exhaustive, "k = {k}");
        }
    }

    #[test]
    fn optimal_picks_minimum_cost_satisfying_node() {
        let (sub, hs) = setup();
        let rec = recoder(&sub, &hs);
        let search = LatticeSearch::new(&sub, &rec);
        for cost in [
            CostKind::Discernibility,
            CostKind::AvgClassSize,
            CostKind::Imprecision,
        ] {
            let outcome = search.optimal(2, cost).unwrap();
            assert!(search.k_of(&outcome.node).unwrap() >= 2);
            // exhaustive check
            let lattice = rec.lattice();
            for node in lattice.nodes_bottom_up() {
                let maps = rec.maps_of(&node);
                let p = Partition::of_mapped(&sub, &maps).unwrap();
                if p.min_class_size() >= 2 {
                    let c = cost.evaluate(lattice, &node, &p, 2);
                    assert!(
                        outcome.cost <= c + 1e-12,
                        "{}: node {node:?} has cost {c} < chosen {}",
                        cost.name(),
                        outcome.cost
                    );
                }
            }
        }
    }

    #[test]
    fn imprecision_search_computes_fewer_partitions() {
        let (sub, hs) = setup();
        let rec = recoder(&sub, &hs);
        let search = LatticeSearch::new(&sub, &rec);
        let tagged = search.optimal(2, CostKind::Imprecision).unwrap();
        let full = search.optimal(2, CostKind::Discernibility).unwrap();
        assert!(
            tagged.partitions_computed <= full.partitions_computed,
            "tagging should never compute more partitions"
        );
        assert!(tagged.partitions_computed < rec.lattice().n_nodes());
    }

    #[test]
    fn unsatisfiable_when_k_exceeds_collapsed_majority() {
        // two attributes that keep two groups even at the top
        let schema = Arc::new(Schema::new(vec![Attribute::ordinal("A", 4)]).unwrap());
        let sub =
            SubTable::new(Arc::clone(&schema), vec![0], vec![vec![0, 0, 0, 1, 2, 3]]).unwrap();
        let attr = schema.attr(0);
        // identity-only hierarchy: nothing can merge, so k=2 is hopeless
        // (row with value 1, 2, 3 stay singletons)
        let h = Hierarchy::identity(attr);
        let hs = vec![h];
        let rec = recoder(&sub, &hs);
        let search = LatticeSearch::new(&sub, &rec);
        assert!(matches!(
            search.samarati_minimal(2),
            Err(PrivacyError::Unsatisfiable { k: 2 })
        ));
        assert!(matches!(
            search.optimal(2, CostKind::Imprecision),
            Err(PrivacyError::Unsatisfiable { k: 2 })
        ));
    }

    #[test]
    fn k_parameter_guards() {
        let (sub, hs) = setup();
        let rec = recoder(&sub, &hs);
        let search = LatticeSearch::new(&sub, &rec);
        assert!(search.samarati_minimal(1).is_err());
        assert!(search.samarati_minimal(9).is_err());
        assert!(search.optimal(0, CostKind::Imprecision).is_err());
    }

    #[test]
    fn assess_k_matches_partition_min() {
        let (sub, _) = setup();
        let ka = assess_k(&sub).unwrap();
        assert_eq!(ka.k, 1);
        assert_eq!(ka.n_classes, 8);
    }
}
