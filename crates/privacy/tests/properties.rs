//! Property-based tests for the privacy-model invariants the lattice
//! search relies on.

use std::sync::Arc;

use cdp_dataset::{Attribute, Code, Hierarchy, Schema, SubTable};
use cdp_privacy::{
    models, mondrian_anonymize, risk, CostKind, Lattice, LatticeSearch, Partition, Recoder,
};
use proptest::prelude::*;

/// A random two-column sub-table with bounded cardinalities, plus its auto
/// hierarchies.
fn arb_data() -> impl Strategy<Value = (SubTable, Vec<Hierarchy>)> {
    (2usize..=12, 2usize..=8, 4usize..=40).prop_flat_map(|(c0, c1, n)| {
        (
            proptest::collection::vec(0..c0 as Code, n),
            proptest::collection::vec(0..c1 as Code, n),
        )
            .prop_map(move |(col0, col1)| {
                let schema = Arc::new(
                    Schema::new(vec![
                        Attribute::ordinal("A", c0),
                        Attribute::nominal("B", c1),
                    ])
                    .unwrap(),
                );
                let sub = SubTable::new(Arc::clone(&schema), vec![0, 1], vec![col0, col1]).unwrap();
                let counts = {
                    let mut c = vec![0usize; c1];
                    for &v in sub.column(1) {
                        c[v as usize] += 1;
                    }
                    c
                };
                let hs = vec![
                    Hierarchy::ordinal_auto(schema.attr(0)),
                    Hierarchy::nominal_from_counts(schema.attr(1), &counts).unwrap(),
                ];
                (sub, hs)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_sizes_sum_to_n((sub, _hs) in arb_data()) {
        let p = Partition::of_subtable(&sub).unwrap();
        let total: u32 = p.class_sizes().iter().sum();
        prop_assert_eq!(total as usize, sub.n_rows());
        for row in 0..sub.n_rows() {
            prop_assert!(p.class_of(row) < p.n_classes());
            prop_assert!(p.class_size_of(row) >= 1);
        }
    }

    #[test]
    fn k_is_monotone_along_lattice_edges((sub, hs) in arb_data()) {
        let recoder = Recoder::new(&sub, hs.iter().collect()).unwrap();
        let search = LatticeSearch::new(&sub, &recoder);
        let lattice = recoder.lattice();
        for node in lattice.nodes_bottom_up() {
            let k_here = search.k_of(&node).unwrap();
            for succ in lattice.successors(&node) {
                let k_succ = search.k_of(&succ).unwrap();
                prop_assert!(
                    k_succ >= k_here,
                    "k dropped from {} to {} along {:?} -> {:?}",
                    k_here, k_succ, node, succ
                );
            }
        }
    }

    #[test]
    fn samarati_height_is_minimal((sub, hs) in arb_data()) {
        let recoder = Recoder::new(&sub, hs.iter().collect()).unwrap();
        let search = LatticeSearch::new(&sub, &recoder);
        let lattice = recoder.lattice();
        let k = 2;
        match search.samarati_minimal(k) {
            Ok((nodes, _)) => {
                let found_h = lattice.height(&nodes[0]);
                let exhaustive_h = lattice
                    .nodes_bottom_up()
                    .filter(|n| search.k_of(n).unwrap() >= k)
                    .map(|n| lattice.height(&n))
                    .min()
                    .unwrap();
                prop_assert_eq!(found_h, exhaustive_h);
                for node in &nodes {
                    prop_assert!(search.k_of(node).unwrap() >= k);
                }
            }
            Err(_) => {
                // unsatisfiable: verify the top really fails
                prop_assert!(search.k_of(&lattice.top()).unwrap() < k);
            }
        }
    }

    #[test]
    fn optimal_node_always_satisfies_k((sub, hs) in arb_data()) {
        let recoder = Recoder::new(&sub, hs.iter().collect()).unwrap();
        let search = LatticeSearch::new(&sub, &recoder);
        for cost in [CostKind::Discernibility, CostKind::AvgClassSize, CostKind::Imprecision] {
            if let Ok(outcome) = search.optimal(2, cost) {
                prop_assert!(search.k_of(&outcome.node).unwrap() >= 2);
                prop_assert!(outcome.cost.is_finite());
            }
        }
    }

    #[test]
    fn recode_apply_agrees_with_mapped_partition((sub, hs) in arb_data()) {
        let recoder = Recoder::new(&sub, hs.iter().collect()).unwrap();
        for node in recoder.lattice().nodes_bottom_up() {
            let materialized = recoder.apply(&sub, &node).unwrap();
            materialized.validate().unwrap();
            let p_mat = Partition::of_subtable(&materialized).unwrap();
            let maps = recoder.maps_of(&node);
            let p_map = Partition::of_mapped(&sub, &maps).unwrap();
            prop_assert_eq!(p_mat, p_map);
        }
    }

    #[test]
    fn risk_figures_are_coherent((sub, _hs) in arb_data()) {
        let p = Partition::of_subtable(&sub).unwrap();
        let pr = risk::prosecutor_risk(&p);
        prop_assert!(pr.max >= pr.mean - 1e-12);
        prop_assert!(pr.mean > 0.0 && pr.mean <= 1.0);
        prop_assert!((0.0..=1.0).contains(&pr.high_risk_fraction));
        prop_assert_eq!(pr.expected_reidentifications as usize, p.n_classes());
        // self-population journalist risk equals prosecutor risk
        let jr = risk::journalist_risk(&sub, &sub).unwrap();
        prop_assert!((jr.max - pr.max).abs() < 1e-12);
        prop_assert!((jr.mean - pr.mean).abs() < 1e-12);
        prop_assert_eq!(jr.orphan_fraction, 0.0);
    }

    #[test]
    fn diversity_models_stay_in_range((sub, _hs) in arb_data()) {
        let p = Partition::of_subtable(&sub).unwrap();
        // use column B itself as the sensitive attribute
        let attr = sub.attr(1);
        let sens = sub.column(1);
        let ld = models::l_diversity(&p, sens, attr.n_categories()).unwrap();
        prop_assert!(ld.distinct_l >= 1);
        prop_assert!(ld.entropy_l >= 1.0 - 1e-12);
        prop_assert!(ld.entropy_l <= ld.distinct_l as f64 + 1e-9,
            "entropy l {} exceeds distinct l {}", ld.entropy_l, ld.distinct_l);
        let tc = models::t_closeness(&p, sens, attr).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tc.t));
    }

    #[test]
    fn mondrian_always_reaches_k((sub, _hs) in arb_data(), k in 2usize..5) {
        prop_assume!(sub.n_rows() >= k);
        let (masked, stats) = mondrian_anonymize(&sub, k).unwrap();
        masked.validate().unwrap();
        prop_assert!(stats.achieved_k >= k,
            "requested {k}, achieved {}", stats.achieved_k);
        prop_assert_eq!(
            Partition::of_subtable(&masked).unwrap().n_classes(),
            stats.n_classes
        );
        // local recoding can only merge or keep classes of the identity
        let identity_classes = Partition::of_subtable(&sub).unwrap().n_classes();
        prop_assert!(stats.n_classes <= identity_classes);
    }

    #[test]
    fn mondrian_is_deterministic((sub, _hs) in arb_data()) {
        prop_assume!(sub.n_rows() >= 2);
        let (a, sa) = mondrian_anonymize(&sub, 2).unwrap();
        let (b, sb) = mondrian_anonymize(&sub, 2).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn generalizing_never_hurts_k_anonymity_audit((sub, hs) in arb_data()) {
        let recoder = Recoder::new(&sub, hs.iter().collect()).unwrap();
        let lattice = recoder.lattice();
        let bottom_k = models::k_anonymity(
            &Partition::of_subtable(&sub).unwrap()).k;
        let top = recoder.apply(&sub, &lattice.top()).unwrap();
        let top_k = models::k_anonymity(&Partition::of_subtable(&top).unwrap()).k;
        prop_assert!(top_k >= bottom_k);
        prop_assert_eq!(top_k, sub.n_rows()); // everything collapses
    }
}

#[test]
fn lattice_node_count_matches_dims_product() {
    let lat = Lattice::new(vec![5, 4, 3]).unwrap();
    assert_eq!(lat.n_nodes(), 60);
    assert_eq!(lat.nodes_bottom_up().count(), 60);
}
