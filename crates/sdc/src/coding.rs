//! Top and bottom coding.
//!
//! Classic threshold recodings for ordinal attributes: bottom coding
//! replaces every value below the `q`-record-quantile category with that
//! category; top coding does the same above the `(1−q)` quantile. The
//! extreme (identifying) tails of the distribution disappear while the bulk
//! is untouched.
//!
//! Nominal attributes have no tails, so both methods use the standard
//! frequency-order adaptation: the rare categories jointly covering at most
//! a fraction `q` of the records are folded away — bottom coding folds them
//! into the *most frequent category of the folded tail* (keeping a distinct
//! "rare/other" value), top coding folds them into the *global modal*
//! category (maximal smoothing).

use cdp_dataset::{AttrKind, Code, SubTable};
use rand::RngCore;

use crate::method::{MethodContext, MethodFamily, ProtectionMethod};
use crate::order::category_frequencies;
use crate::{Result, SdcError};

/// Shared implementation of the two coding directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Bottom,
    Top,
}

fn check_fraction(q: f64) -> Result<()> {
    if !(q > 0.0 && q < 1.0) {
        return Err(SdcError::InvalidParam(format!(
            "coding fraction must lie in (0, 1), got {q}"
        )));
    }
    Ok(())
}

/// Recode one ordinal column: values beyond the record-quantile threshold
/// collapse onto the threshold category.
fn code_ordinal(col: &[Code], n_categories: usize, q: f64, dir: Direction) -> Vec<Code> {
    let n = col.len();
    let counts = category_frequencies(col, n_categories);
    let target = ((q * n as f64).ceil() as usize).min(n);
    let threshold = match dir {
        Direction::Bottom => {
            let mut cum = 0usize;
            let mut t = 0usize;
            for (code, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    t = code;
                    break;
                }
            }
            t
        }
        Direction::Top => {
            let mut cum = 0usize;
            let mut t = n_categories.saturating_sub(1);
            for code in (0..n_categories).rev() {
                cum += counts[code];
                if cum >= target {
                    t = code;
                    break;
                }
            }
            t
        }
    } as Code;
    col.iter()
        .map(|&v| match dir {
            Direction::Bottom => v.max(threshold),
            Direction::Top => v.min(threshold),
        })
        .collect()
}

/// Recode one nominal column by folding the rare tail (cumulative record
/// share ≤ `q`).
fn code_nominal(col: &[Code], n_categories: usize, q: f64, dir: Direction) -> Vec<Code> {
    let n = col.len();
    let counts = category_frequencies(col, n_categories);
    let mut codes: Vec<usize> = (0..n_categories).collect();
    codes.sort_by_key(|&c| (counts[c], c)); // ascending frequency

    let budget = (q * n as f64).floor() as usize;
    let mut folded: Vec<usize> = Vec::new();
    let mut used = 0usize;
    for &c in &codes {
        if counts[c] == 0 {
            continue;
        }
        if used + counts[c] <= budget {
            used += counts[c];
            folded.push(c);
        } else {
            break;
        }
    }
    if folded.is_empty() {
        return col.to_vec();
    }
    let target: Code = match dir {
        // most frequent member of the folded tail
        Direction::Bottom => *folded
            .iter()
            .max_by_key(|&&c| (counts[c], std::cmp::Reverse(c)))
            .expect("non-empty") as Code,
        // global modal category
        Direction::Top => codes[n_categories - 1] as Code,
    };
    let mut fold_mask = vec![false; n_categories];
    for &c in &folded {
        fold_mask[c] = true;
    }
    col.iter()
        .map(|&v| if fold_mask[v as usize] { target } else { v })
        .collect()
}

fn apply(original: &SubTable, q: f64, dir: Direction) -> Result<SubTable> {
    check_fraction(q)?;
    let columns = (0..original.n_attrs())
        .map(|k| {
            let attr = original.attr(k);
            match attr.kind() {
                AttrKind::Ordinal => code_ordinal(original.column(k), attr.n_categories(), q, dir),
                AttrKind::Nominal => code_nominal(original.column(k), attr.n_categories(), q, dir),
            }
        })
        .collect();
    Ok(SubTable::new(
        std::sync::Arc::clone(original.schema()),
        original.attr_indices().to_vec(),
        columns,
    )?)
}

/// Bottom coding: collapse the low/rare tail (fraction `q` of records).
#[derive(Debug, Clone, Copy)]
pub struct BottomCoding {
    /// Fraction of records in the collapsed tail, in `(0, 1)`.
    pub fraction: f64,
}

impl ProtectionMethod for BottomCoding {
    fn name(&self) -> String {
        format!("bottom(q={:.2})", self.fraction)
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::BottomCoding
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        apply(original, self.fraction, Direction::Bottom)
    }
}

/// Top coding: collapse the high/rare tail (fraction `q` of records).
#[derive(Debug, Clone, Copy)]
pub struct TopCoding {
    /// Fraction of records in the collapsed tail, in `(0, 1)`.
    pub fraction: f64,
}

impl ProtectionMethod for TopCoding {
    fn name(&self) -> String {
        format!("top(q={:.2})", self.fraction)
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::TopCoding
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        apply(original, self.fraction, Direction::Top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn housing_sub() -> SubTable {
        DatasetKind::Housing
            .generate(&GeneratorConfig::seeded(5).with_records(200))
            .protected_subtable()
    }

    #[test]
    fn bottom_coding_raises_low_values() {
        let sub = housing_sub();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        let masked = BottomCoding { fraction: 0.2 }
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        for k in 0..sub.n_attrs() {
            let min_orig = sub.column(k).iter().min().copied().unwrap();
            let min_mask = masked.column(k).iter().min().copied().unwrap();
            assert!(min_mask >= min_orig);
        }
        assert!(sub.hamming(&masked) > 0);
    }

    #[test]
    fn top_coding_lowers_high_values() {
        let sub = housing_sub();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        let masked = TopCoding { fraction: 0.2 }
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        for k in 0..sub.n_attrs() {
            let max_orig = sub.column(k).iter().max().copied().unwrap();
            let max_mask = masked.column(k).iter().max().copied().unwrap();
            assert!(max_mask <= max_orig);
        }
        assert!(sub.hamming(&masked) > 0);
    }

    #[test]
    fn larger_fraction_distorts_more() {
        let sub = housing_sub();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        let small = TopCoding { fraction: 0.05 }
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        let large = TopCoding { fraction: 0.4 }
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        assert!(sub.hamming(&large) >= sub.hamming(&small));
    }

    #[test]
    fn nominal_fold_preserves_dictionary() {
        let sub = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(2).with_records(200))
            .protected_subtable();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        for m in [
            Box::new(BottomCoding { fraction: 0.15 }) as Box<dyn ProtectionMethod>,
            Box::new(TopCoding { fraction: 0.15 }),
        ] {
            let masked = m.protect(&sub, &ctx, &mut rng).unwrap();
            masked.validate().unwrap();
        }
    }

    #[test]
    fn invalid_fraction_rejected() {
        let sub = housing_sub();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        assert!(BottomCoding { fraction: 0.0 }
            .protect(&sub, &ctx, &mut rng)
            .is_err());
        assert!(TopCoding { fraction: 1.0 }
            .protect(&sub, &ctx, &mut rng)
            .is_err());
    }

    #[test]
    fn deterministic_and_named() {
        let sub = housing_sub();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let m = BottomCoding { fraction: 0.1 };
        let a = m
            .protect(&sub, &ctx, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let b = m
            .protect(&sub, &ctx, &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(m.name(), "bottom(q=0.10)");
        assert_eq!(TopCoding { fraction: 0.25 }.name(), "top(q=0.25)");
    }
}
