//! Error type of the SDC crate.

use std::fmt;

use cdp_dataset::DatasetError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SdcError>;

/// Errors raised by protection methods.
#[derive(Debug)]
pub enum SdcError {
    /// A parameter outside its admissible range (e.g. `k = 0`
    /// microaggregation, a swap window larger than the file).
    InvalidParam(String),
    /// Propagated data-model error.
    Dataset(DatasetError),
}

impl fmt::Display for SdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdcError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            SdcError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for SdcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdcError::Dataset(e) => Some(e),
            SdcError::InvalidParam(_) => None,
        }
    }
}

impl From<DatasetError> for SdcError {
    fn from(e: DatasetError) -> Self {
        SdcError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SdcError::InvalidParam("k must be >= 2".into());
        assert!(e.to_string().contains("k must be >= 2"));
        let d: SdcError = DatasetError::Empty("x".into()).into();
        assert!(std::error::Error::source(&d).is_some());
    }
}
