//! Extension methods beyond the paper's six: two classic SDC baselines
//! that slot into the same [`ProtectionMethod`] interface and can be mixed
//! into evolutionary populations (see the `custom_method` example for the
//! pattern).
//!
//! * [`LocalSuppression`] — suppress the cells of *rare* combinations to
//!   the attribute mode: the targeted counterpart of global recoding,
//!   touching only risky records.
//! * [`RandomSwap`] — uncontrolled data swapping: swap whole attribute
//!   values between random record pairs. Unlike rank swapping there is no
//!   rank window, so marginals are preserved but multivariate structure
//!   degrades fast; a useful lower-bound baseline.

use cdp_dataset::{Code, SubTable};
use rand::Rng;
use rand::RngCore;

use crate::method::{MethodContext, MethodFamily, ProtectionMethod};
use crate::order::category_frequencies;
use crate::{Result, SdcError};

/// Suppress cells belonging to combinations held by fewer than
/// `min_class_size` records, replacing each suppressed cell with its
/// attribute's modal category.
#[derive(Debug, Clone, Copy)]
pub struct LocalSuppression {
    /// Combinations with fewer holders than this are suppressed.
    pub min_class_size: usize,
}

impl ProtectionMethod for LocalSuppression {
    fn name(&self) -> String {
        format!("local-suppress(k={})", self.min_class_size)
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::LocalSuppression
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        if self.min_class_size < 2 {
            return Err(SdcError::InvalidParam(format!(
                "local suppression needs min_class_size >= 2, got {}",
                self.min_class_size
            )));
        }
        let n = original.n_rows();
        let a = original.n_attrs();

        // class size per record: sort keys, count runs
        let mut keyed: Vec<(Vec<Code>, usize)> = (0..n)
            .map(|r| ((0..a).map(|k| original.get(r, k)).collect(), r))
            .collect();
        keyed.sort();
        let mut class_size = vec![0usize; n];
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && keyed[j].0 == keyed[i].0 {
                j += 1;
            }
            for item in keyed.iter().take(j).skip(i) {
                class_size[item.1] = j - i;
            }
            i = j;
        }

        let modes: Vec<Code> = (0..a)
            .map(|k| {
                let counts =
                    category_frequencies(original.column(k), original.attr(k).n_categories());
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(code, _)| code as Code)
                    .unwrap_or(0)
            })
            .collect();

        let mut columns: Vec<Vec<Code>> = (0..a).map(|k| original.column(k).to_vec()).collect();
        for r in 0..n {
            if class_size[r] < self.min_class_size {
                for (k, col) in columns.iter_mut().enumerate() {
                    col[r] = modes[k];
                }
            }
        }
        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )?)
    }
}

/// Uncontrolled swapping: for each attribute, `fraction` of the records
/// exchange values with a uniformly random partner.
#[derive(Debug, Clone, Copy)]
pub struct RandomSwap {
    /// Fraction of records swapped per attribute, in `(0, 1]`.
    pub fraction: f64,
}

impl ProtectionMethod for RandomSwap {
    fn name(&self) -> String {
        format!("random-swap(q={:.2})", self.fraction)
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::RandomSwapping
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        if !(self.fraction > 0.0 && self.fraction <= 1.0) {
            return Err(SdcError::InvalidParam(format!(
                "random swap fraction must lie in (0, 1], got {}",
                self.fraction
            )));
        }
        let n = original.n_rows();
        let mut columns: Vec<Vec<Code>> = (0..original.n_attrs())
            .map(|k| original.column(k).to_vec())
            .collect();
        let swaps = ((n as f64 * self.fraction / 2.0).round() as usize).max(1);
        for col in &mut columns {
            for _ in 0..swaps {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                col.swap(i, j);
            }
        }
        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_dataset::stats::{k_anonymity, uniqueness};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> SubTable {
        DatasetKind::German
            .generate(&GeneratorConfig::seeded(13).with_records(250))
            .protected_subtable()
    }

    fn ctx<'a>(hs: &'a [&'a cdp_dataset::Hierarchy]) -> MethodContext<'a> {
        MethodContext { hierarchies: hs }
    }

    #[test]
    fn local_suppression_reduces_uniqueness() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let masked = LocalSuppression { min_class_size: 3 }
            .protect(&sub, &ctx(&hs), &mut rng)
            .unwrap();
        assert!(uniqueness(&masked) < uniqueness(&sub) + 1e-12);
        masked.validate().unwrap();
    }

    #[test]
    fn local_suppression_larger_k_suppresses_more() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let soft = LocalSuppression { min_class_size: 2 }
            .protect(&sub, &ctx(&hs), &mut rng)
            .unwrap();
        let hard = LocalSuppression { min_class_size: 10 }
            .protect(&sub, &ctx(&hs), &mut rng)
            .unwrap();
        assert!(sub.hamming(&hard) >= sub.hamming(&soft));
        // suppressed records collapse onto the modal combination, so the
        // smallest class can only grow or stay
        assert!(k_anonymity(&hard) >= k_anonymity(&sub));
    }

    #[test]
    fn local_suppression_rejects_trivial_k() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        assert!(LocalSuppression { min_class_size: 1 }
            .protect(&sub, &ctx(&hs), &mut rng)
            .is_err());
    }

    #[test]
    fn random_swap_preserves_marginals() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(2);
        let masked = RandomSwap { fraction: 0.5 }
            .protect(&sub, &ctx(&hs), &mut rng)
            .unwrap();
        for k in 0..sub.n_attrs() {
            let count = |col: &[Code]| {
                let mut c = vec![0usize; sub.attr(k).n_categories()];
                for &v in col {
                    c[v as usize] += 1;
                }
                c
            };
            assert_eq!(count(sub.column(k)), count(masked.column(k)));
        }
        assert!(sub.hamming(&masked) > 0);
    }

    #[test]
    fn random_swap_fraction_bounds() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(3);
        assert!(RandomSwap { fraction: 0.0 }
            .protect(&sub, &ctx(&hs), &mut rng)
            .is_err());
        assert!(RandomSwap { fraction: 1.5 }
            .protect(&sub, &ctx(&hs), &mut rng)
            .is_err());
    }

    #[test]
    fn names_and_families() {
        assert_eq!(
            LocalSuppression { min_class_size: 4 }.name(),
            "local-suppress(k=4)"
        );
        assert_eq!(RandomSwap { fraction: 0.3 }.name(), "random-swap(q=0.30)");
        assert_eq!(
            LocalSuppression { min_class_size: 4 }.family(),
            MethodFamily::LocalSuppression
        );
        assert_eq!(
            RandomSwap { fraction: 0.3 }.family(),
            MethodFamily::RandomSwapping
        );
    }
}
