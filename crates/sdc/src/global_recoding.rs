//! Global recoding over generalization hierarchies.
//!
//! Every protected attribute is mapped through a level of its
//! [`cdp_dataset::Hierarchy`]: categories merged by the level become
//! indistinguishable (they all take the group's representative member).
//! Because the recoding is *global* — applied to every record — marginal
//! structure degrades uniformly, unlike the local distortion of PRAM or
//! rank swapping.

use cdp_dataset::{Code, SubTable};
use rand::RngCore;

use crate::method::{MethodContext, MethodFamily, ProtectionMethod};
use crate::{Result, SdcError};

/// Global recoding with a generalization level per protected attribute.
///
/// The level vector is cycled when shorter than the attribute list, so
/// `GlobalRecoding::uniform(l)` recodes every attribute at level `l`.
/// Levels beyond an attribute's hierarchy depth clamp to the deepest level.
#[derive(Debug, Clone)]
pub struct GlobalRecoding {
    /// Requested hierarchy level per attribute (cycled).
    pub levels: Vec<usize>,
}

impl GlobalRecoding {
    /// Same level for every attribute.
    pub fn uniform(level: usize) -> Self {
        GlobalRecoding {
            levels: vec![level],
        }
    }

    /// Explicit per-attribute levels.
    pub fn per_attr(levels: Vec<usize>) -> Self {
        GlobalRecoding { levels }
    }
}

impl ProtectionMethod for GlobalRecoding {
    fn name(&self) -> String {
        let lv: Vec<String> = self.levels.iter().map(|l| l.to_string()).collect();
        format!("grec(l=[{}])", lv.join(","))
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::GlobalRecoding
    }

    fn protect(
        &self,
        original: &SubTable,
        ctx: &MethodContext<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        if self.levels.is_empty() {
            return Err(SdcError::InvalidParam(
                "global recoding needs at least one level".into(),
            ));
        }
        if ctx.hierarchies.len() != original.n_attrs() {
            return Err(SdcError::InvalidParam(format!(
                "{} hierarchies provided for {} protected attributes",
                ctx.hierarchies.len(),
                original.n_attrs()
            )));
        }
        let columns: Vec<Vec<Code>> = (0..original.n_attrs())
            .map(|k| {
                let level = ctx.hierarchies[k].level_clamped(self.levels[k % self.levels.len()]);
                original.column(k).iter().map(|&c| level.map(c)).collect()
            })
            .collect();
        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> cdp_dataset::generators::Dataset {
        DatasetKind::Housing.generate(&GeneratorConfig::seeded(8).with_records(150))
    }

    #[test]
    fn deeper_levels_merge_more() {
        let ds = setup();
        let sub = ds.protected_subtable();
        let hs = ds.protected_hierarchies();
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        let shallow = GlobalRecoding::uniform(1)
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        let deep = GlobalRecoding::uniform(3)
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        let distinct = |s: &SubTable, k: usize| {
            let mut seen = std::collections::HashSet::new();
            for &c in s.column(k) {
                seen.insert(c);
            }
            seen.len()
        };
        for k in 0..sub.n_attrs() {
            assert!(distinct(&deep, k) <= distinct(&shallow, k));
            assert!(distinct(&shallow, k) <= distinct(&sub, k));
        }
    }

    #[test]
    fn level_zero_is_identity() {
        let ds = setup();
        let sub = ds.protected_subtable();
        let hs = ds.protected_hierarchies();
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        let masked = GlobalRecoding::uniform(0)
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        assert_eq!(sub.hamming(&masked), 0);
    }

    #[test]
    fn per_attr_levels_cycle() {
        let ds = setup();
        let sub = ds.protected_subtable();
        let hs = ds.protected_hierarchies();
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        // [0, 2] cycles to levels (0, 2, 0): first and third attr untouched
        let masked = GlobalRecoding::per_attr(vec![0, 2])
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        assert_eq!(masked.column(0), sub.column(0));
        assert_eq!(masked.column(2), sub.column(2));
        assert_ne!(masked.column(1), sub.column(1));
    }

    #[test]
    fn oversized_level_clamps() {
        let ds = setup();
        let sub = ds.protected_subtable();
        let hs = ds.protected_hierarchies();
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        let masked = GlobalRecoding::uniform(99)
            .protect(&sub, &ctx, &mut rng)
            .unwrap();
        // deepest level = single group: one distinct value per column
        for k in 0..masked.n_attrs() {
            let first = masked.column(k)[0];
            assert!(masked.column(k).iter().all(|&c| c == first));
        }
    }

    #[test]
    fn hierarchy_arity_checked() {
        let ds = setup();
        let sub = ds.protected_subtable();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(1);
        assert!(GlobalRecoding::uniform(1)
            .protect(&sub, &ctx, &mut rng)
            .is_err());
    }

    #[test]
    fn name_encodes_levels() {
        assert_eq!(
            GlobalRecoding::per_attr(vec![1, 2, 1]).name(),
            "grec(l=[1,2,1])"
        );
    }
}
