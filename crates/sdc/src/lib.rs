#![warn(missing_docs)]

//! # cdp-sdc
//!
//! Statistical disclosure control (SDC) methods for categorical microdata.
//!
//! The paper seeds its evolutionary algorithm with populations of files
//! protected by "state-of-the-art protection techniques": categorical
//! **microaggregation** (Torra 2004), **bottom coding**, **top coding**,
//! **global recoding** (Hundepool & Willenborg 1998), **rank swapping**
//! (Moore 1996) and **PRAM** (Gouweleeuw et al. 1998). This crate implements
//! all six from scratch, plus the parameter sweeps that reproduce the
//! paper's exact population compositions (110 protections for Housing,
//! 104 for German and Flare, 86 for Adult — see [`SuiteConfig::paper`]).
//!
//! Every method consumes the [`cdp_dataset::SubTable`] of protected columns
//! and produces a masked sub-table over the *same category dictionaries* —
//! a closed domain is required by the paper's mutation operator, which
//! replaces cells with "a randomly selected value among all valid values for
//! the specific variable". Generalization-style methods therefore map merged
//! groups to a representative member category (see `cdp_dataset::Hierarchy`).
//!
//! ```
//! use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
//! use cdp_sdc::{build_population, SuiteConfig};
//!
//! let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(100));
//! let pop = build_population(&ds, &SuiteConfig::paper(ds.kind), 1).unwrap();
//! assert_eq!(pop.len(), 86); // the paper's Adult population size
//! ```

mod coding;
mod error;
mod extra;
mod global_recoding;
mod mdav;
mod method;
mod microaggregation;
mod order;
mod pram;
mod rank_swap;
mod suite;

pub use coding::{BottomCoding, TopCoding};
pub use error::{Result, SdcError};
pub use extra::{LocalSuppression, RandomSwap};
pub use global_recoding::GlobalRecoding;
pub use mdav::Mdav;
pub use method::{MethodContext, MethodFamily, ProtectionMethod};
pub use microaggregation::{Aggregate, Grouping, MicroVariant, Microaggregation};
pub use order::{category_frequencies, sort_indices};
pub use pram::{Pram, PramMode};
pub use rank_swap::RankSwapping;
pub use suite::{build_population, build_population_from, NamedProtection, SuiteConfig};
