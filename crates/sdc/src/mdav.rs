//! MDAV microaggregation (Maximum Distance to Average Vector), adapted to
//! categorical data.
//!
//! MDAV (Domingo-Ferrer & Mateo-Sanz) is the canonical fixed-size
//! microaggregation heuristic: repeatedly find the record `r` farthest
//! from the current centroid, group `r` with its `k−1` nearest neighbours,
//! then do the same around the record farthest from `r`; the remainder
//! (< 2k records) forms the last group. Compared to the projection-based
//! grouping of [`crate::Microaggregation`], MDAV builds genuinely
//! multivariate clusters and usually trades a little more computation for
//! less information loss at equal `k`.
//!
//! The categorical adaptation uses the mixed distance of the metrics
//! domain — normalized rank distance on ordinal attributes (frequency
//! order for nominal ones would be circular here, so nominal attributes
//! contribute 0/1 disagreement) — and a *medoid-style centroid*: the
//! per-attribute median (ordinal) / mode (nominal) of the group, which is
//! also the representative written back to the group's records.

use cdp_dataset::{AttrKind, Code, SubTable};
use rand::RngCore;

use crate::method::{MethodContext, MethodFamily, ProtectionMethod};
use crate::order::{median_by_keys, mode};
use crate::{Result, SdcError};

/// MDAV microaggregation with minimum group size `k`.
#[derive(Debug, Clone, Copy)]
pub struct Mdav {
    /// Minimum group size (the last group may hold up to `2k − 1`).
    pub k: usize,
}

impl Mdav {
    /// Convenience constructor.
    pub fn new(k: usize) -> Self {
        Mdav { k }
    }
}

/// Distance between two records over the protected attributes.
fn record_distance(sub: &SubTable, spans: &[f64], i: usize, j: usize) -> f64 {
    let mut d = 0.0;
    for (k, &span) in spans.iter().enumerate().take(sub.n_attrs()) {
        let (x, y) = (sub.get(i, k), sub.get(j, k));
        if span > 0.0 {
            d += f64::from(x.abs_diff(y)) * span;
        } else if x != y {
            d += 1.0;
        }
    }
    d
}

/// Distance from a record to an explicit centroid (codes per attribute).
fn centroid_distance(sub: &SubTable, spans: &[f64], i: usize, centroid: &[Code]) -> f64 {
    let mut d = 0.0;
    for k in 0..sub.n_attrs() {
        let (x, y) = (sub.get(i, k), centroid[k]);
        if spans[k] > 0.0 {
            d += f64::from(x.abs_diff(y)) * spans[k];
        } else if x != y {
            d += 1.0;
        }
    }
    d
}

/// Medoid-style centroid of a record set: per-attribute median (ordinal) or
/// mode (nominal).
fn centroid(sub: &SubTable, rows: &[usize]) -> Vec<Code> {
    (0..sub.n_attrs())
        .map(|k| {
            let attr = sub.attr(k);
            let codes: Vec<Code> = rows.iter().map(|&r| sub.get(r, k)).collect();
            match attr.kind() {
                AttrKind::Ordinal => {
                    let keys: Vec<usize> = (0..attr.n_categories()).collect();
                    median_by_keys(codes, &keys)
                }
                AttrKind::Nominal => mode(codes.into_iter(), attr.n_categories()),
            }
        })
        .collect()
}

impl ProtectionMethod for Mdav {
    fn name(&self) -> String {
        format!("mdav(k={})", self.k)
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::Microaggregation
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        let n = original.n_rows();
        if self.k < 2 {
            return Err(SdcError::InvalidParam(format!(
                "MDAV requires k >= 2, got {}",
                self.k
            )));
        }
        if self.k > n {
            return Err(SdcError::InvalidParam(format!(
                "MDAV k = {} exceeds the {} records",
                self.k, n
            )));
        }

        // ordinal scale per attribute (0.0 marks nominal -> 0/1 distance)
        let spans: Vec<f64> = (0..original.n_attrs())
            .map(|k| {
                let attr = original.attr(k);
                if attr.kind().is_ordinal() && attr.n_categories() > 1 {
                    1.0 / (attr.n_categories() - 1) as f64
                } else {
                    0.0
                }
            })
            .collect();

        let mut remaining: Vec<usize> = (0..n).collect();
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(n / self.k + 1);

        while remaining.len() >= 2 * self.k {
            // centroid of the remaining records
            let c = centroid(original, &remaining);
            // r = farthest from centroid; s = farthest from r
            let r = *remaining
                .iter()
                .max_by(|&&a, &&b| {
                    centroid_distance(original, &spans, a, &c)
                        .partial_cmp(&centroid_distance(original, &spans, b, &c))
                        .expect("finite")
                        .then(a.cmp(&b))
                })
                .expect("non-empty");
            let s = *remaining
                .iter()
                .max_by(|&&a, &&b| {
                    record_distance(original, &spans, a, r)
                        .partial_cmp(&record_distance(original, &spans, b, r))
                        .expect("finite")
                        .then(a.cmp(&b))
                })
                .expect("non-empty");

            for anchor in [r, s] {
                if !remaining.contains(&anchor) {
                    continue; // consumed by the first group of this round
                }
                let mut by_dist: Vec<usize> = remaining.clone();
                by_dist.sort_by(|&a, &b| {
                    record_distance(original, &spans, a, anchor)
                        .partial_cmp(&record_distance(original, &spans, b, anchor))
                        .expect("finite")
                        .then(a.cmp(&b))
                });
                let group: Vec<usize> = by_dist.into_iter().take(self.k).collect();
                remaining.retain(|x| !group.contains(x));
                groups.push(group);
            }
        }
        if !remaining.is_empty() {
            groups.push(remaining);
        }

        let mut columns: Vec<Vec<Code>> = (0..original.n_attrs())
            .map(|k| original.column(k).to_vec())
            .collect();
        for group in &groups {
            let rep = centroid(original, group);
            for (k, col) in columns.iter_mut().enumerate() {
                for &row in group {
                    col[row] = rep[k];
                }
            }
        }

        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_dataset::stats::k_anonymity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> SubTable {
        DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(31).with_records(150))
            .protected_subtable()
    }

    fn ctx<'a>(hs: &'a [&'a cdp_dataset::Hierarchy]) -> MethodContext<'a> {
        MethodContext { hierarchies: hs }
    }

    #[test]
    fn groups_are_k_anonymous_on_the_joint_key() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let k = 4;
        let masked = Mdav::new(k).protect(&sub, &ctx(&hs), &mut rng).unwrap();
        // every group collapses to one joint value shared by >= k records
        // (distinct groups may coincide, so classes can only be larger)
        assert!(k_anonymity(&masked) >= k, "k = {}", k_anonymity(&masked));
    }

    #[test]
    fn output_is_valid_and_deterministic() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let a = Mdav::new(5)
            .protect(&sub, &ctx(&hs), &mut StdRng::seed_from_u64(1))
            .unwrap();
        let b = Mdav::new(5)
            .protect(&sub, &ctx(&hs), &mut StdRng::seed_from_u64(99))
            .unwrap();
        a.validate().unwrap();
        assert_eq!(a, b, "MDAV must not depend on the RNG");
    }

    #[test]
    fn larger_k_distorts_more() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let small = Mdav::new(2).protect(&sub, &ctx(&hs), &mut rng).unwrap();
        let large = Mdav::new(25).protect(&sub, &ctx(&hs), &mut rng).unwrap();
        assert!(sub.hamming(&large) > sub.hamming(&small));
    }

    #[test]
    fn mdav_beats_projection_grouping_on_information_loss() {
        // the reason MDAV exists: multivariate clusters preserve more
        // structure than single-axis projection at equal k
        use crate::{Aggregate, Grouping, MicroVariant, Microaggregation};
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let k = 5;
        let mdav = Mdav::new(k).protect(&sub, &ctx(&hs), &mut rng).unwrap();
        let proj = Microaggregation::new(
            k,
            MicroVariant {
                grouping: Grouping::Multivariate,
                aggregate: Aggregate::Median,
            },
        )
        .protect(&sub, &ctx(&hs), &mut rng)
        .unwrap();
        // cells changed is a crude IL proxy that needs no metrics dep
        assert!(
            sub.hamming(&mdav) <= sub.hamming(&proj) + sub.flat_len() / 10,
            "mdav {} vs projection {}",
            sub.hamming(&mdav),
            sub.hamming(&proj)
        );
    }

    #[test]
    fn invalid_k_rejected() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Mdav::new(1).protect(&sub, &ctx(&hs), &mut rng).is_err());
        assert!(Mdav::new(151).protect(&sub, &ctx(&hs), &mut rng).is_err());
    }

    #[test]
    fn name_and_family() {
        assert_eq!(Mdav::new(3).name(), "mdav(k=3)");
        assert_eq!(Mdav::new(3).family(), MethodFamily::Microaggregation);
    }
}
