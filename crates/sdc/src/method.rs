//! The protection-method abstraction.

use cdp_dataset::{Hierarchy, SubTable};
use rand::RngCore;

use crate::Result;

/// The family a concrete protection belongs to; used by the suite builder
/// and by experiment reports to group protections as the paper does
/// ("72 of Microaggregation, 6 of Bottom Coding, …").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodFamily {
    /// Categorical microaggregation.
    Microaggregation,
    /// Bottom coding.
    BottomCoding,
    /// Top coding.
    TopCoding,
    /// Global recoding over generalization hierarchies.
    GlobalRecoding,
    /// Rank swapping.
    RankSwapping,
    /// Post Randomization Method.
    Pram,
    /// Extension: local suppression of rare combinations (not part of the
    /// paper's population sweeps).
    LocalSuppression,
    /// Extension: uncontrolled random swapping baseline.
    RandomSwapping,
}

impl MethodFamily {
    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            MethodFamily::Microaggregation => "Microaggregation",
            MethodFamily::BottomCoding => "Bottom Coding",
            MethodFamily::TopCoding => "Top Coding",
            MethodFamily::GlobalRecoding => "Global Recoding",
            MethodFamily::RankSwapping => "Rank Swapping",
            MethodFamily::Pram => "PRAM",
            MethodFamily::LocalSuppression => "Local Suppression",
            MethodFamily::RandomSwapping => "Random Swapping",
        }
    }

    /// The paper's six families in its listing order (extensions excluded).
    pub fn all() -> [MethodFamily; 6] {
        [
            MethodFamily::Microaggregation,
            MethodFamily::BottomCoding,
            MethodFamily::TopCoding,
            MethodFamily::GlobalRecoding,
            MethodFamily::RankSwapping,
            MethodFamily::Pram,
        ]
    }
}

/// Side information a method may need beyond the data itself.
pub struct MethodContext<'a> {
    /// Generalization hierarchy for each protected column, aligned with the
    /// sub-table's local attribute order.
    pub hierarchies: &'a [&'a Hierarchy],
}

/// A categorical masking method: original protected columns in, masked
/// protected columns out.
///
/// Implementations must keep the output inside the input's category
/// dictionaries and preserve shape; [`SubTable::new`] re-validates this on
/// construction, so a buggy method fails loudly rather than poisoning the
/// population.
///
/// Methods are `Send + Sync`: they are pure configuration (all mutable
/// state flows through the `rng` argument), and jobs that carry them must
/// be shareable across the protection server's worker threads.
pub trait ProtectionMethod: Send + Sync {
    /// Identifier including parameters, e.g. `"microagg(k=5,multi,median)"`.
    fn name(&self) -> String;

    /// Which family this method belongs to.
    fn family(&self) -> MethodFamily;

    /// Produce a protected copy of `original`.
    fn protect(
        &self,
        original: &SubTable,
        ctx: &MethodContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<SubTable>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_match_paper_vocabulary() {
        assert_eq!(MethodFamily::Pram.name(), "PRAM");
        assert_eq!(MethodFamily::RankSwapping.name(), "Rank Swapping");
        assert_eq!(MethodFamily::all().len(), 6);
    }
}
