//! Categorical microaggregation (Torra 2004).
//!
//! Records are partitioned into groups of at least `k` similar records and
//! every value is replaced by a group aggregate — the **median** category
//! (under the attribute's total order) or the **mode**. A protected file is
//! then k-anonymous *within each aggregated attribute group*, trading
//! information loss against disclosure risk as `k` grows.
//!
//! Three grouping strategies are provided, crossed with the two aggregates
//! they yield the six microaggregation variants the population sweeps use:
//!
//! * [`Grouping::Univariate`] — each attribute is sorted and partitioned
//!   independently (minimal information loss, weaker protection);
//! * [`Grouping::Multivariate`] — records are ordered by their mean
//!   normalized rank across *all* protected attributes and partitioned once
//!   (the categorical analogue of single-axis projection microaggregation);
//! * [`Grouping::Bivariate`] — attributes are processed in consecutive
//!   pairs (the remainder univariately), a middle ground.

use cdp_dataset::{Code, SubTable};
use rand::RngCore;

use crate::method::{MethodContext, MethodFamily, ProtectionMethod};
use crate::order::{category_order_keys, median_by_keys, mode};
use crate::{Result, SdcError};

/// How records are grouped before aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grouping {
    /// Sort and partition each attribute independently.
    Univariate,
    /// One partition driven by the mean normalized rank over all attributes.
    Multivariate,
    /// Partition attribute pairs jointly, remainder univariately.
    Bivariate,
}

/// Which group representative replaces the members' values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Median category under the attribute's total order (Torra's
    /// median-based approach; frequency order for nominal attributes).
    Median,
    /// Modal (most frequent) category of the group.
    Mode,
}

/// A grouping × aggregate combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroVariant {
    /// Grouping strategy.
    pub grouping: Grouping,
    /// Group representative.
    pub aggregate: Aggregate,
}

impl MicroVariant {
    /// All six combinations, in sweep order.
    pub fn all() -> [MicroVariant; 6] {
        let gs = [
            Grouping::Univariate,
            Grouping::Multivariate,
            Grouping::Bivariate,
        ];
        let aggs = [Aggregate::Median, Aggregate::Mode];
        let mut out = [MicroVariant {
            grouping: Grouping::Univariate,
            aggregate: Aggregate::Median,
        }; 6];
        let mut i = 0;
        for g in gs {
            for a in aggs {
                out[i] = MicroVariant {
                    grouping: g,
                    aggregate: a,
                };
                i += 1;
            }
        }
        out
    }

    fn tag(&self) -> String {
        let g = match self.grouping {
            Grouping::Univariate => "uni",
            Grouping::Multivariate => "multi",
            Grouping::Bivariate => "bi",
        };
        let a = match self.aggregate {
            Aggregate::Median => "median",
            Aggregate::Mode => "mode",
        };
        format!("{g},{a}")
    }
}

/// Categorical microaggregation with fixed group size `k` (the last group
/// absorbs the remainder, so group sizes are in `[k, 2k)`).
#[derive(Debug, Clone)]
pub struct Microaggregation {
    /// Minimum group size.
    pub k: usize,
    /// Grouping/aggregation variant.
    pub variant: MicroVariant,
}

impl Microaggregation {
    /// Convenience constructor.
    pub fn new(k: usize, variant: MicroVariant) -> Self {
        Microaggregation { k, variant }
    }

    fn check(&self, n: usize) -> Result<()> {
        if self.k < 2 {
            return Err(SdcError::InvalidParam(format!(
                "microaggregation requires k >= 2, got {}",
                self.k
            )));
        }
        if self.k > n {
            return Err(SdcError::InvalidParam(format!(
                "microaggregation k = {} exceeds the {} records",
                self.k, n
            )));
        }
        Ok(())
    }

    /// Group boundaries for `n` records: `n / k` groups, last one extended.
    fn group_bounds(&self, n: usize) -> Vec<(usize, usize)> {
        let g = (n / self.k).max(1);
        (0..g)
            .map(|i| {
                let start = i * self.k;
                let end = if i + 1 == g { n } else { start + self.k };
                (start, end)
            })
            .collect()
    }

    /// Aggregate the values of `rows` (record indices) in column `col` and
    /// write the representative back to those rows in `out`.
    fn aggregate_group(
        &self,
        col: &[Code],
        keys: &[usize],
        n_categories: usize,
        rows: &[usize],
        out: &mut [Code],
    ) {
        let rep = match self.variant.aggregate {
            Aggregate::Median => median_by_keys(rows.iter().map(|&i| col[i]).collect(), keys),
            Aggregate::Mode => mode(rows.iter().map(|&i| col[i]), n_categories),
        };
        for &i in rows {
            out[i] = rep;
        }
    }

    /// Partition records by ascending `score` and aggregate the listed
    /// attributes group by group.
    fn aggregate_by_score(
        &self,
        original: &SubTable,
        attrs: &[usize],
        score_order: &[usize],
        keys_per_attr: &[Vec<usize>],
        columns: &mut [Vec<Code>],
    ) {
        for (start, end) in self.group_bounds(score_order.len()) {
            let rows = &score_order[start..end];
            for &kx in attrs {
                let attr = original.attr(kx);
                self.aggregate_group(
                    original.column(kx),
                    &keys_per_attr[kx],
                    attr.n_categories(),
                    rows,
                    &mut columns[kx],
                );
            }
        }
    }
}

impl ProtectionMethod for Microaggregation {
    fn name(&self) -> String {
        format!("microagg(k={},{})", self.k, self.variant.tag())
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::Microaggregation
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        let n = original.n_rows();
        self.check(n)?;
        let a = original.n_attrs();

        // Per-attribute total orders (dictionary or frequency based).
        let keys_per_attr: Vec<Vec<usize>> = (0..a)
            .map(|kx| {
                let attr = original.attr(kx);
                category_order_keys(attr.kind(), original.column(kx), attr.n_categories())
            })
            .collect();

        let mut columns: Vec<Vec<Code>> = (0..a).map(|kx| original.column(kx).to_vec()).collect();

        // normalized order position of a record's value on attribute kx
        let pos = |kx: usize, i: usize| -> f64 {
            let attr = original.attr(kx);
            let c = attr.n_categories();
            if c <= 1 {
                0.0
            } else {
                keys_per_attr[kx][original.get(i, kx) as usize] as f64 / (c - 1) as f64
            }
        };

        match self.variant.grouping {
            Grouping::Univariate => {
                for kx in 0..a {
                    let mut order: Vec<usize> = (0..n).collect();
                    order.sort_by(|&x, &y| {
                        pos(kx, x)
                            .partial_cmp(&pos(kx, y))
                            .expect("ranks are finite")
                            .then(x.cmp(&y))
                    });
                    self.aggregate_by_score(original, &[kx], &order, &keys_per_attr, &mut columns);
                }
            }
            Grouping::Multivariate => {
                let mut order: Vec<usize> = (0..n).collect();
                let score =
                    |i: usize| -> f64 { (0..a).map(|kx| pos(kx, i)).sum::<f64>() / a as f64 };
                order.sort_by(|&x, &y| {
                    score(x)
                        .partial_cmp(&score(y))
                        .expect("ranks are finite")
                        .then(x.cmp(&y))
                });
                let attrs: Vec<usize> = (0..a).collect();
                self.aggregate_by_score(original, &attrs, &order, &keys_per_attr, &mut columns);
            }
            Grouping::Bivariate => {
                let mut kx = 0;
                while kx < a {
                    let attrs: Vec<usize> = if kx + 1 < a {
                        vec![kx, kx + 1]
                    } else {
                        vec![kx]
                    };
                    let mut order: Vec<usize> = (0..n).collect();
                    let score = |i: usize| -> f64 {
                        attrs.iter().map(|&j| pos(j, i)).sum::<f64>() / attrs.len() as f64
                    };
                    order.sort_by(|&x, &y| {
                        score(x)
                            .partial_cmp(&score(y))
                            .expect("ranks are finite")
                            .then(x.cmp(&y))
                    });
                    self.aggregate_by_score(original, &attrs, &order, &keys_per_attr, &mut columns);
                    kx += 2;
                }
            }
        }

        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (cdp_dataset::generators::Dataset, SubTable) {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(3).with_records(120));
        let sub = ds.protected_subtable();
        (ds, sub)
    }

    fn ctx_for<'a>(h: &'a [&'a cdp_dataset::Hierarchy]) -> MethodContext<'a> {
        MethodContext { hierarchies: h }
    }

    #[test]
    fn every_variant_produces_valid_output() {
        let (ds, sub) = setup();
        let hs = ds.protected_hierarchies();
        let mut rng = StdRng::seed_from_u64(1);
        for variant in MicroVariant::all() {
            let m = Microaggregation::new(5, variant);
            let masked = m.protect(&sub, &ctx_for(&hs), &mut rng).unwrap();
            masked.validate().unwrap();
            assert_eq!(masked.n_rows(), sub.n_rows());
        }
    }

    #[test]
    fn univariate_groups_are_k_anonymous_per_attribute() {
        let (ds, sub) = setup();
        let hs = ds.protected_hierarchies();
        let mut rng = StdRng::seed_from_u64(1);
        let k = 5;
        let m = Microaggregation::new(
            k,
            MicroVariant {
                grouping: Grouping::Univariate,
                aggregate: Aggregate::Median,
            },
        );
        let masked = m.protect(&sub, &ctx_for(&hs), &mut rng).unwrap();
        // every surviving category value is shared by >= k records
        for kx in 0..masked.n_attrs() {
            let col = masked.column(kx);
            let mut counts = vec![0usize; masked.attr(kx).n_categories()];
            for &c in col {
                counts[c as usize] += 1;
            }
            for &cnt in counts.iter() {
                assert!(cnt == 0 || cnt >= k, "value with only {cnt} holders");
            }
        }
    }

    #[test]
    fn larger_k_distorts_more() {
        let (ds, sub) = setup();
        let hs = ds.protected_hierarchies();
        let mut rng = StdRng::seed_from_u64(1);
        let variant = MicroVariant {
            grouping: Grouping::Multivariate,
            aggregate: Aggregate::Median,
        };
        let small = Microaggregation::new(2, variant)
            .protect(&sub, &ctx_for(&hs), &mut rng)
            .unwrap();
        let large = Microaggregation::new(30, variant)
            .protect(&sub, &ctx_for(&hs), &mut rng)
            .unwrap();
        assert!(sub.hamming(&large) > sub.hamming(&small));
    }

    #[test]
    fn invalid_k_rejected() {
        let (ds, sub) = setup();
        let hs = ds.protected_hierarchies();
        let mut rng = StdRng::seed_from_u64(1);
        let variant = MicroVariant::all()[0];
        assert!(Microaggregation::new(1, variant)
            .protect(&sub, &ctx_for(&hs), &mut rng)
            .is_err());
        assert!(Microaggregation::new(500, variant)
            .protect(&sub, &ctx_for(&hs), &mut rng)
            .is_err());
    }

    #[test]
    fn deterministic() {
        let (ds, sub) = setup();
        let hs = ds.protected_hierarchies();
        let m = Microaggregation::new(4, MicroVariant::all()[3]);
        let a = m
            .protect(&sub, &ctx_for(&hs), &mut StdRng::seed_from_u64(1))
            .unwrap();
        let b = m
            .protect(&sub, &ctx_for(&hs), &mut StdRng::seed_from_u64(99))
            .unwrap();
        assert_eq!(a, b, "microaggregation must not depend on the RNG");
    }

    #[test]
    fn name_encodes_parameters() {
        let m = Microaggregation::new(7, MicroVariant::all()[1]);
        assert_eq!(m.name(), "microagg(k=7,uni,mode)");
        assert_eq!(m.family(), MethodFamily::Microaggregation);
    }
}
