//! Ordering utilities shared by the rank-based methods.
//!
//! Ordinal attributes have an intrinsic category order (the dictionary
//! order). Nominal attributes do not; rank-based methods (rank swapping,
//! microaggregation grouping, quantile coding) fall back to **frequency
//! order** — categories sorted by how often they occur — which is the usual
//! adaptation in the SDC literature when a total order is required.

use cdp_dataset::{AttrKind, Code};

/// Occurrences of each category in a column.
pub fn category_frequencies(column: &[Code], n_categories: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_categories];
    for &c in column {
        counts[c as usize] += 1;
    }
    counts
}

/// A total order on the categories of an attribute: `order_key[code]` is the
/// sort position of `code`. Ordinal attributes use dictionary order; nominal
/// attributes use ascending frequency order (ties broken by code) so that
/// "low" means "rare".
pub fn category_order_keys(kind: AttrKind, column: &[Code], n_categories: usize) -> Vec<usize> {
    match kind {
        AttrKind::Ordinal => (0..n_categories).collect(),
        AttrKind::Nominal => {
            let freq = category_frequencies(column, n_categories);
            let mut codes: Vec<usize> = (0..n_categories).collect();
            codes.sort_by_key(|&c| (freq[c], c));
            let mut key = vec![0usize; n_categories];
            for (pos, &c) in codes.iter().enumerate() {
                key[c] = pos;
            }
            key
        }
    }
}

/// Record indices sorted by the attribute's total order (stable: ties keep
/// record order, making every method deterministic given its inputs).
pub fn sort_indices(column: &[Code], kind: AttrKind, n_categories: usize) -> Vec<usize> {
    let keys = category_order_keys(kind, column, n_categories);
    let mut idx: Vec<usize> = (0..column.len()).collect();
    idx.sort_by_key(|&i| (keys[column[i] as usize], i));
    idx
}

/// The modal (most frequent) category of a slice of codes; ties resolve to
/// the smallest code.
pub fn mode(codes: impl Iterator<Item = Code>, n_categories: usize) -> Code {
    let mut counts = vec![0usize; n_categories];
    for c in codes {
        counts[c as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(code, &cnt)| (cnt, std::cmp::Reverse(code)))
        .map(|(code, _)| code as Code)
        .unwrap_or(0)
}

/// The median category of a slice of codes under the given order keys.
pub fn median_by_keys(mut codes: Vec<Code>, keys: &[usize]) -> Code {
    debug_assert!(!codes.is_empty());
    codes.sort_by_key(|&c| keys[c as usize]);
    codes[(codes.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_count() {
        let col = [0u16, 1, 1, 2, 2, 2];
        assert_eq!(category_frequencies(&col, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn ordinal_order_is_dictionary_order() {
        let col = [2u16, 0, 1];
        assert_eq!(
            category_order_keys(AttrKind::Ordinal, &col, 3),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn nominal_order_is_frequency_order() {
        let col = [0u16, 1, 1, 2, 2, 2];
        // freq: code0=1, code1=2, code2=3, code3=0 -> ascending: 3,0,1,2
        assert_eq!(
            category_order_keys(AttrKind::Nominal, &col, 4),
            vec![1, 2, 3, 0]
        );
    }

    #[test]
    fn sort_indices_is_stable() {
        let col = [1u16, 0, 1, 0];
        let idx = sort_indices(&col, AttrKind::Ordinal, 2);
        assert_eq!(idx, vec![1, 3, 0, 2]);
    }

    #[test]
    fn mode_breaks_ties_low() {
        let col = [3u16, 1, 1, 3];
        assert_eq!(mode(col.iter().copied(), 4), 1);
    }

    #[test]
    fn median_respects_order_keys() {
        // dictionary order
        let keys: Vec<usize> = (0..5).collect();
        assert_eq!(median_by_keys(vec![4, 0, 2], &keys), 2);
        // even count -> lower middle
        assert_eq!(median_by_keys(vec![0, 1, 2, 3], &keys), 1);
        // custom order reversing the dictionary
        let rev: Vec<usize> = (0..5).rev().collect();
        assert_eq!(median_by_keys(vec![4, 0, 2], &rev), 2);
        assert_eq!(median_by_keys(vec![4, 0], &rev), 4);
    }
}
