//! Post Randomization Method — PRAM (Gouweleeuw et al. 1998).
//!
//! Every cell is re-sampled through a per-attribute Markov transition
//! matrix `P`, where `P[k][l]` is the probability that category `k` is
//! published as category `l`. The retention probability `θ = P[k][k]`
//! controls the protection strength. Three matrix constructions are
//! provided:
//!
//! * [`PramMode::Uniform`] — off-diagonal mass spread evenly;
//! * [`PramMode::Proportional`] — off-diagonal mass proportional to the
//!   target categories' empirical frequencies (rare categories are rarely
//!   introduced, preserving plausibility);
//! * [`PramMode::Invariant`] — the invariant construction `T = R·Q` with
//!   `Q` the Bayes reversal of the uniform matrix `R`, so the expected
//!   marginal distribution of the published file equals the original one
//!   (`p·T = p`).
//!
//! Instead of a fixed retention probability, the matrix can be calibrated
//! to a differential-privacy budget ([`Pram::epsilon_calibrated`]): the
//! per-attribute retention becomes `θ_k = e^ε / (e^ε + K_k − 1)` — the
//! ε-LDP randomized-response rate for an attribute with `K_k` categories
//! (information-theoretic PRAM under DP, after arXiv 2009.11257) — so one
//! ε yields a stronger retention on wide attributes and a weaker one on
//! narrow attributes, exactly matching the budget each channel affords.

use cdp_dataset::sample::weighted_index;
use cdp_dataset::{Code, SubTable};
use rand::RngCore;

use crate::method::{MethodContext, MethodFamily, ProtectionMethod};
use crate::order::category_frequencies;
use crate::{Result, SdcError};

/// Transition-matrix construction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PramMode {
    /// `P[k][l] = (1-θ)/(K-1)` off the diagonal.
    Uniform,
    /// Off-diagonal mass proportional to target frequency.
    Proportional,
    /// Marginal-preserving invariant matrix.
    Invariant,
}

impl PramMode {
    fn tag(self) -> &'static str {
        match self {
            PramMode::Uniform => "unif",
            PramMode::Proportional => "prop",
            PramMode::Invariant => "inv",
        }
    }
}

/// PRAM with retention probability `theta` applied independently per cell.
#[derive(Debug, Clone, Copy)]
pub struct Pram {
    /// Diagonal retention probability, in `(0, 1]`. Ignored when
    /// `epsilon` is set — the retention is then derived per attribute.
    pub theta: f64,
    /// Matrix construction.
    pub mode: PramMode,
    /// Differential-privacy budget; when set, the per-attribute retention
    /// is `θ_k = e^ε / (e^ε + K_k − 1)` instead of the fixed `theta`.
    pub epsilon: Option<f64>,
}

impl Pram {
    /// Convenience constructor.
    pub fn new(theta: f64, mode: PramMode) -> Self {
        Pram {
            theta,
            mode,
            epsilon: None,
        }
    }

    /// ε-calibrated invariant PRAM: retention derived per attribute from
    /// the DP budget (`θ_k = e^ε / (e^ε + K_k − 1)`), with the
    /// marginal-preserving [`PramMode::Invariant`] matrix on top.
    pub fn epsilon_calibrated(epsilon: f64) -> Self {
        Pram {
            theta: 0.0,
            mode: PramMode::Invariant,
            epsilon: Some(epsilon),
        }
    }

    /// The retention probability used for an attribute with `k`
    /// categories: the fixed `theta`, or the ε-derived rate when a budget
    /// is set.
    pub fn retention_for(&self, k: usize) -> f64 {
        match self.epsilon {
            Some(eps) => {
                let e = eps.exp();
                e / (e + k.saturating_sub(1) as f64)
            }
            None => self.theta,
        }
    }

    /// Build the transition matrix for one attribute given its empirical
    /// category probabilities. Rows sum to 1.
    pub fn transition_matrix(&self, probs: &[f64]) -> Vec<Vec<f64>> {
        let k = probs.len();
        if k == 1 {
            return vec![vec![1.0]];
        }
        let theta = self.retention_for(k);
        match self.mode {
            PramMode::Uniform => {
                let off = (1.0 - theta) / (k - 1) as f64;
                (0..k)
                    .map(|a| (0..k).map(|b| if a == b { theta } else { off }).collect())
                    .collect()
            }
            PramMode::Proportional => (0..k)
                .map(|a| {
                    let rest: f64 = probs
                        .iter()
                        .enumerate()
                        .filter(|&(b, _)| b != a)
                        .map(|(_, &p)| p)
                        .sum();
                    (0..k)
                        .map(|b| {
                            if a == b {
                                theta
                            } else if rest > 0.0 {
                                (1.0 - theta) * probs[b] / rest
                            } else {
                                (1.0 - theta) / (k - 1) as f64
                            }
                        })
                        .collect()
                })
                .collect(),
            PramMode::Invariant => {
                // R: uniform matrix; lambda = p R; Q[m][l] = R[l][m] p[l] / lambda[m];
                // T = R Q satisfies p T = p.
                let r = Pram::new(theta, PramMode::Uniform).transition_matrix(probs);
                let lambda: Vec<f64> = (0..k)
                    .map(|m| (0..k).map(|l| probs[l] * r[l][m]).sum())
                    .collect();
                let q: Vec<Vec<f64>> = (0..k)
                    .map(|m| {
                        (0..k)
                            .map(|l| {
                                if lambda[m] > 0.0 {
                                    r[l][m] * probs[l] / lambda[m]
                                } else if l == m {
                                    1.0
                                } else {
                                    0.0
                                }
                            })
                            .collect()
                    })
                    .collect();
                (0..k)
                    .map(|a| {
                        (0..k)
                            .map(|b| (0..k).map(|m| r[a][m] * q[m][b]).sum())
                            .collect()
                    })
                    .collect()
            }
        }
    }
}

impl ProtectionMethod for Pram {
    fn name(&self) -> String {
        match self.epsilon {
            Some(eps) => format!("pram(eps={:.2},{})", eps, self.mode.tag()),
            None => format!("pram(theta={:.2},{})", self.theta, self.mode.tag()),
        }
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::Pram
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        match self.epsilon {
            Some(eps) => {
                if !(eps.is_finite() && eps > 0.0) {
                    return Err(SdcError::InvalidParam(format!(
                        "PRAM privacy budget must be a positive finite ε, got {eps}"
                    )));
                }
            }
            None => {
                if !(self.theta > 0.0 && self.theta <= 1.0) {
                    return Err(SdcError::InvalidParam(format!(
                        "PRAM retention probability must lie in (0, 1], got {}",
                        self.theta
                    )));
                }
            }
        }
        let n = original.n_rows();
        let mut columns: Vec<Vec<Code>> = Vec::with_capacity(original.n_attrs());
        for k in 0..original.n_attrs() {
            let attr = original.attr(k);
            let c = attr.n_categories();
            let counts = category_frequencies(original.column(k), c);
            let probs: Vec<f64> = counts.iter().map(|&x| x as f64 / n.max(1) as f64).collect();
            let matrix = self.transition_matrix(&probs);
            let col = original
                .column(k)
                .iter()
                .map(|&v| weighted_index(&matrix[v as usize], rng) as Code)
                .collect();
            columns.push(col);
        }
        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> SubTable {
        DatasetKind::Flare
            .generate(&GeneratorConfig::seeded(6).with_records(400))
            .protected_subtable()
    }

    fn ctx<'a>(hs: &'a [&'a cdp_dataset::Hierarchy]) -> MethodContext<'a> {
        MethodContext { hierarchies: hs }
    }

    #[test]
    fn rows_of_every_matrix_sum_to_one() {
        let probs = [0.5, 0.3, 0.15, 0.05];
        for mode in [
            PramMode::Uniform,
            PramMode::Proportional,
            PramMode::Invariant,
        ] {
            let m = Pram::new(0.7, mode).transition_matrix(&probs);
            for row in &m {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "{mode:?}: row sums to {s}");
                assert!(row.iter().all(|&p| p >= -1e-12));
            }
        }
    }

    #[test]
    fn invariant_matrix_preserves_marginals() {
        let probs = [0.5, 0.3, 0.15, 0.05];
        let t = Pram::new(0.6, PramMode::Invariant).transition_matrix(&probs);
        for b in 0..probs.len() {
            let out: f64 = (0..probs.len()).map(|a| probs[a] * t[a][b]).sum();
            assert!(
                (out - probs[b]).abs() < 1e-9,
                "marginal {b}: {out} vs {}",
                probs[b]
            );
        }
    }

    #[test]
    fn theta_one_is_identity() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let masked = Pram::new(1.0, PramMode::Uniform)
            .protect(&sub, &ctx(&hs), &mut rng)
            .unwrap();
        assert_eq!(sub.hamming(&masked), 0);
    }

    #[test]
    fn lower_theta_distorts_more() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let strong = Pram::new(0.5, PramMode::Proportional)
            .protect(&sub, &ctx(&hs), &mut StdRng::seed_from_u64(2))
            .unwrap();
        let weak = Pram::new(0.95, PramMode::Proportional)
            .protect(&sub, &ctx(&hs), &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert!(sub.hamming(&strong) > sub.hamming(&weak));
    }

    #[test]
    fn retention_rate_matches_theta() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let theta = 0.8;
        let masked = Pram::new(theta, PramMode::Uniform)
            .protect(&sub, &ctx(&hs), &mut StdRng::seed_from_u64(3))
            .unwrap();
        let total = sub.flat_len() as f64;
        let kept = (total as usize - sub.hamming(&masked)) as f64;
        let rate = kept / total;
        assert!(
            (rate - theta).abs() < 0.05,
            "retention {rate} too far from theta {theta}"
        );
    }

    #[test]
    fn invalid_theta_rejected() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Pram::new(0.0, PramMode::Uniform)
            .protect(&sub, &ctx(&hs), &mut rng)
            .is_err());
        assert!(Pram::new(1.5, PramMode::Uniform)
            .protect(&sub, &ctx(&hs), &mut rng)
            .is_err());
    }

    #[test]
    fn single_category_attribute_is_stable() {
        let m = Pram::new(0.5, PramMode::Invariant).transition_matrix(&[1.0]);
        assert_eq!(m, vec![vec![1.0]]);
    }

    #[test]
    fn name_encodes_parameters() {
        assert_eq!(
            Pram::new(0.75, PramMode::Invariant).name(),
            "pram(theta=0.75,inv)"
        );
        assert_eq!(Pram::epsilon_calibrated(1.5).name(), "pram(eps=1.50,inv)");
    }

    #[test]
    fn epsilon_calibration_derives_per_attribute_retention() {
        let pram = Pram::epsilon_calibrated(1.0);
        let e = 1.0f64.exp();
        // K = 2: the classic binary randomized-response rate e/(e+1)
        assert!((pram.retention_for(2) - e / (e + 1.0)).abs() < 1e-12);
        // wider attributes retain less under the same budget
        assert!(pram.retention_for(8) < pram.retention_for(3));
        // a bigger budget retains more at fixed width
        assert!(Pram::epsilon_calibrated(3.0).retention_for(4) > pram.retention_for(4));
        // the matrix row built from the derived rate still sums to 1 and
        // stays marginal-preserving (invariant construction)
        let probs = [0.4, 0.3, 0.2, 0.1];
        let t = pram.transition_matrix(&probs);
        for row in &t {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for b in 0..probs.len() {
            let out: f64 = (0..probs.len()).map(|a| probs[a] * t[a][b]).sum();
            assert!((out - probs[b]).abs() < 1e-9);
        }
    }

    #[test]
    fn epsilon_budget_orders_distortion() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let tight = Pram::epsilon_calibrated(0.5)
            .protect(&sub, &ctx(&hs), &mut StdRng::seed_from_u64(4))
            .unwrap();
        let loose = Pram::epsilon_calibrated(4.0)
            .protect(&sub, &ctx(&hs), &mut StdRng::seed_from_u64(4))
            .unwrap();
        assert!(
            sub.hamming(&tight) > sub.hamming(&loose),
            "a tighter budget must distort more"
        );
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                Pram::epsilon_calibrated(eps)
                    .protect(&sub, &ctx(&hs), &mut rng)
                    .is_err(),
                "ε = {eps} must be rejected"
            );
        }
    }
}
