//! Rank swapping (Moore 1996).
//!
//! Each attribute is sorted by its total order (dictionary order for
//! ordinal attributes, frequency order for nominal ones — see
//! [`crate::order`]) and every record's value is swapped with that of an
//! unswapped partner at most `p%·n` rank positions away. Values stay within
//! the empirical distribution of the attribute, so univariate marginals are
//! exactly preserved — the damage is to multivariate structure, growing
//! with `p`.

use cdp_dataset::{Code, SubTable};
use rand::Rng;
use rand::RngCore;

use crate::method::{MethodContext, MethodFamily, ProtectionMethod};
use crate::order::sort_indices;
use crate::{Result, SdcError};

/// Rank swapping with window `p` percent of the record count.
#[derive(Debug, Clone, Copy)]
pub struct RankSwapping {
    /// Window size as a percentage of the number of records (`1..=100`).
    pub p: usize,
}

impl RankSwapping {
    /// Convenience constructor.
    pub fn new(p: usize) -> Self {
        RankSwapping { p }
    }
}

impl ProtectionMethod for RankSwapping {
    fn name(&self) -> String {
        format!("rankswap(p={})", self.p)
    }

    fn family(&self) -> MethodFamily {
        MethodFamily::RankSwapping
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<SubTable> {
        if self.p == 0 || self.p > 100 {
            return Err(SdcError::InvalidParam(format!(
                "rank swapping window must be in 1..=100 percent, got {}",
                self.p
            )));
        }
        let n = original.n_rows();
        let window = ((self.p * n) / 100).max(1);

        let mut columns: Vec<Vec<Code>> = (0..original.n_attrs())
            .map(|k| original.column(k).to_vec())
            .collect();

        for (k, column) in columns.iter_mut().enumerate() {
            let attr = original.attr(k);
            let order = sort_indices(original.column(k), attr.kind(), attr.n_categories());
            let mut swapped = vec![false; n];
            for pos in 0..n {
                if swapped[pos] {
                    continue;
                }
                let hi = (pos + window).min(n - 1);
                if hi <= pos {
                    continue;
                }
                // pick a random unswapped partner within the window
                let offset = rng.gen_range(1..=hi - pos);
                let mut partner = pos + offset;
                // walk forward (then backward) to the nearest free slot
                while partner <= hi && swapped[partner] {
                    partner += 1;
                }
                if partner > hi {
                    partner = pos + offset;
                    while partner > pos && swapped[partner] {
                        partner -= 1;
                    }
                    if partner == pos {
                        continue;
                    }
                }
                let (ri, rj) = (order[pos], order[partner]);
                column.swap(ri, rj);
                swapped[pos] = true;
                swapped[partner] = true;
            }
        }

        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> SubTable {
        DatasetKind::German
            .generate(&GeneratorConfig::seeded(4).with_records(300))
            .protected_subtable()
    }

    fn empty_ctx<'a>(hs: &'a [&'a cdp_dataset::Hierarchy]) -> MethodContext<'a> {
        MethodContext { hierarchies: hs }
    }

    #[test]
    fn marginals_exactly_preserved() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let masked = RankSwapping::new(5)
            .protect(&sub, &empty_ctx(&hs), &mut rng)
            .unwrap();
        for k in 0..sub.n_attrs() {
            let count = |col: &[Code]| {
                let mut c = vec![0usize; sub.attr(k).n_categories()];
                for &v in col {
                    c[v as usize] += 1;
                }
                c
            };
            assert_eq!(count(sub.column(k)), count(masked.column(k)));
        }
    }

    #[test]
    fn swapping_changes_records() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        let masked = RankSwapping::new(10)
            .protect(&sub, &empty_ctx(&hs), &mut rng)
            .unwrap();
        assert!(sub.hamming(&masked) > 0);
    }

    #[test]
    fn window_bounds_rank_displacement() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(7);
        let p = 3;
        let masked = RankSwapping::new(p)
            .protect(&sub, &empty_ctx(&hs), &mut rng)
            .unwrap();
        let n = sub.n_rows();
        let window = (p * n) / 100;
        for k in 0..sub.n_attrs() {
            let attr = sub.attr(k);
            // ranks in the sorted order of the original column
            let order = sort_indices(sub.column(k), attr.kind(), attr.n_categories());
            let mut rank_of = vec![0usize; n];
            for (pos, &i) in order.iter().enumerate() {
                rank_of[i] = pos;
            }
            // a swapped-in value must originate within the window, hence its
            // order key may shift by at most `window` positions worth of
            // category boundaries; verify via value-level rank bound
            let keys =
                crate::order::category_order_keys(attr.kind(), sub.column(k), attr.n_categories());
            for i in 0..n {
                if masked.get(i, k) != sub.get(i, k) {
                    // partner's original rank within window of i's rank
                    let old_key = keys[sub.get(i, k) as usize] as i64;
                    let new_key = keys[masked.get(i, k) as usize] as i64;
                    // the category key can move only while ranks move <= window,
                    // and each rank step crosses at most one category boundary
                    assert!(
                        (old_key - new_key).unsigned_abs() as usize <= window.max(1) + 1,
                        "rank displacement too large at record {i}, attr {k}"
                    );
                    let _ = rank_of[i];
                }
            }
        }
    }

    #[test]
    fn larger_window_distorts_more() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let small = RankSwapping::new(1)
            .protect(&sub, &empty_ctx(&hs), &mut StdRng::seed_from_u64(2))
            .unwrap();
        let large = RankSwapping::new(40)
            .protect(&sub, &empty_ctx(&hs), &mut StdRng::seed_from_u64(2))
            .unwrap();
        // a wider window lets values travel across category boundaries more
        // often, hence more cells change
        assert!(sub.hamming(&large) >= sub.hamming(&small));
    }

    #[test]
    fn invalid_window_rejected() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let mut rng = StdRng::seed_from_u64(1);
        assert!(RankSwapping::new(0)
            .protect(&sub, &empty_ctx(&hs), &mut rng)
            .is_err());
        assert!(RankSwapping::new(101)
            .protect(&sub, &empty_ctx(&hs), &mut rng)
            .is_err());
    }

    #[test]
    fn seeded_reproducibility() {
        let sub = setup();
        let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
        let a = RankSwapping::new(5)
            .protect(&sub, &empty_ctx(&hs), &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = RankSwapping::new(5)
            .protect(&sub, &empty_ctx(&hs), &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
    }
}
