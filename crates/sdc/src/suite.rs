//! Initial-population builder.
//!
//! The paper seeds the evolutionary algorithm with a population of
//! protections per dataset:
//!
//! | Dataset | Total | Microagg | Bottom | Top | Recoding | Rank swap | PRAM |
//! |---------|-------|----------|--------|-----|----------|-----------|------|
//! | Housing | 110   | 72       | 6      | 6   | 6        | 11        | 9    |
//! | German  | 104   | 72       | 4      | 4   | 4        | 11        | 9    |
//! | Flare   | 104   | 72       | 4      | 4   | 4        | 11        | 9    |
//! | Adult   |  86   | 48       | 6      | 6   | 6        | 11        | 9    |
//!
//! [`SuiteConfig::paper`] reproduces these counts exactly through parameter
//! sweeps (the paper does not list the individual parameters, so the grids
//! here are our choice — documented in DESIGN.md §5).

use cdp_dataset::generators::{Dataset, DatasetKind};
use cdp_dataset::{Hierarchy, SubTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    BottomCoding, GlobalRecoding, MethodContext, MethodFamily, MicroVariant, Microaggregation,
    Pram, PramMode, ProtectionMethod, RankSwapping, Result, TopCoding,
};

/// One protected file with its provenance.
#[derive(Debug, Clone)]
pub struct NamedProtection {
    /// Method identifier including parameters.
    pub name: String,
    /// Method family for report grouping.
    pub family: MethodFamily,
    /// The masked protected columns.
    pub data: SubTable,
}

impl From<NamedProtection> for (String, SubTable) {
    fn from(p: NamedProtection) -> Self {
        (p.name, p.data)
    }
}

/// Parameter sweep defining an initial population.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Microaggregation group sizes (crossed with `microagg_variants`).
    pub microagg_ks: Vec<usize>,
    /// Microaggregation grouping/aggregate variants.
    pub microagg_variants: Vec<MicroVariant>,
    /// Tail fractions used by bottom *and* top coding.
    pub coding_fractions: Vec<f64>,
    /// Per-attribute hierarchy-level combinations for global recoding.
    pub recoding_levels: Vec<Vec<usize>>,
    /// Rank-swapping windows (percent of records).
    pub rank_swap_ps: Vec<usize>,
    /// PRAM retention probabilities.
    pub pram_thetas: Vec<f64>,
    /// PRAM matrix construction.
    pub pram_mode: PramMode,
}

impl SuiteConfig {
    /// The sweep reproducing the paper's population composition for `kind`.
    pub fn paper(kind: DatasetKind) -> Self {
        let microagg_ks: Vec<usize> = match kind {
            // 12 k-values x 6 variants = 72 protections
            DatasetKind::Housing | DatasetKind::German | DatasetKind::Flare => {
                vec![2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 20]
            }
            // 8 x 6 = 48
            DatasetKind::Adult => vec![2, 3, 4, 5, 6, 8, 10, 15],
        };
        let coding_fractions = match kind {
            DatasetKind::Housing | DatasetKind::Adult => {
                vec![0.05, 0.10, 0.15, 0.20, 0.25, 0.30]
            }
            DatasetKind::German | DatasetKind::Flare => vec![0.05, 0.10, 0.20, 0.30],
        };
        let recoding_levels = match kind {
            DatasetKind::Housing | DatasetKind::Adult => vec![
                vec![1, 1, 1],
                vec![1, 1, 2],
                vec![1, 2, 1],
                vec![2, 1, 1],
                vec![2, 2, 1],
                vec![2, 2, 2],
            ],
            DatasetKind::German | DatasetKind::Flare => {
                vec![vec![1, 1, 1], vec![1, 2, 1], vec![2, 1, 2], vec![2, 2, 2]]
            }
        };
        SuiteConfig {
            microagg_ks,
            microagg_variants: MicroVariant::all().to_vec(),
            coding_fractions,
            recoding_levels,
            rank_swap_ps: (1..=11).collect(),
            pram_thetas: (0..9).map(|i| 0.5 + 0.05 * i as f64).collect(),
            pram_mode: PramMode::Proportional,
        }
    }

    /// A tiny sweep for tests, examples and doc snippets (12 protections).
    pub fn small() -> Self {
        SuiteConfig {
            microagg_ks: vec![3, 6],
            microagg_variants: vec![MicroVariant::all()[0], MicroVariant::all()[3]],
            coding_fractions: vec![0.1, 0.25],
            recoding_levels: vec![vec![1]],
            rank_swap_ps: vec![2, 8],
            pram_thetas: vec![0.7],
            pram_mode: PramMode::Proportional,
        }
    }

    /// Total number of protections the sweep will produce.
    pub fn total(&self) -> usize {
        self.microagg_ks.len() * self.microagg_variants.len()
            + 2 * self.coding_fractions.len()
            + self.recoding_levels.len()
            + self.rank_swap_ps.len()
            + self.pram_thetas.len()
    }
}

/// Materialize the sweep into named protections, in the paper's family
/// order (microaggregation, bottom, top, recoding, rank swapping, PRAM).
///
/// # Errors
/// Propagates the first method failure (invalid parameters for the dataset
/// size, hierarchy mismatches, …).
pub fn build_population(
    ds: &Dataset,
    cfg: &SuiteConfig,
    seed: u64,
) -> Result<Vec<NamedProtection>> {
    let original = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    build_population_from(&original, &hierarchies, cfg, seed)
}

/// [`build_population`] for an arbitrary original sub-table (a loaded CSV,
/// a masked file, …) with caller-supplied hierarchies — the entry point the
/// `cdp::pipeline` layer uses when the data did not come from a generator.
///
/// The RNG stream is identical to [`build_population`]'s for the same seed,
/// so both paths produce the same protections for the same original.
///
/// # Errors
/// Propagates the first method failure, as in [`build_population`].
pub fn build_population_from(
    original: &SubTable,
    hierarchies: &[&Hierarchy],
    cfg: &SuiteConfig,
    seed: u64,
) -> Result<Vec<NamedProtection>> {
    let ctx = MethodContext { hierarchies };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5DC0_15EB);
    let mut out = Vec::with_capacity(cfg.total());

    let run = |method: &dyn ProtectionMethod,
               rng: &mut StdRng,
               out: &mut Vec<NamedProtection>|
     -> Result<()> {
        let data = method.protect(original, &ctx, rng)?;
        out.push(NamedProtection {
            name: method.name(),
            family: method.family(),
            data,
        });
        Ok(())
    };

    for &k in &cfg.microagg_ks {
        for &variant in &cfg.microagg_variants {
            run(&Microaggregation::new(k, variant), &mut rng, &mut out)?;
        }
    }
    for &q in &cfg.coding_fractions {
        run(&BottomCoding { fraction: q }, &mut rng, &mut out)?;
    }
    for &q in &cfg.coding_fractions {
        run(&TopCoding { fraction: q }, &mut rng, &mut out)?;
    }
    for levels in &cfg.recoding_levels {
        run(
            &GlobalRecoding::per_attr(levels.clone()),
            &mut rng,
            &mut out,
        )?;
    }
    for &p in &cfg.rank_swap_ps {
        run(&RankSwapping::new(p), &mut rng, &mut out)?;
    }
    for &theta in &cfg.pram_thetas {
        run(&Pram::new(theta, cfg.pram_mode), &mut rng, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::GeneratorConfig;

    fn counts_by_family(pop: &[NamedProtection]) -> Vec<(MethodFamily, usize)> {
        MethodFamily::all()
            .iter()
            .map(|&f| (f, pop.iter().filter(|p| p.family == f).count()))
            .collect()
    }

    #[test]
    fn paper_counts_housing() {
        let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(1).with_records(120));
        let pop = build_population(&ds, &SuiteConfig::paper(ds.kind), 1).unwrap();
        assert_eq!(pop.len(), 110);
        let counts = counts_by_family(&pop);
        assert_eq!(
            counts.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            vec![72, 6, 6, 6, 11, 9]
        );
    }

    #[test]
    fn paper_counts_german_flare() {
        for kind in [DatasetKind::German, DatasetKind::Flare] {
            let ds = kind.generate(&GeneratorConfig::seeded(1).with_records(120));
            let pop = build_population(&ds, &SuiteConfig::paper(kind), 1).unwrap();
            assert_eq!(pop.len(), 104, "{}", kind.name());
            let counts = counts_by_family(&pop);
            assert_eq!(
                counts.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
                vec![72, 4, 4, 4, 11, 9]
            );
        }
    }

    #[test]
    fn paper_counts_adult() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(120));
        let pop = build_population(&ds, &SuiteConfig::paper(ds.kind), 1).unwrap();
        assert_eq!(pop.len(), 86);
        let counts = counts_by_family(&pop);
        assert_eq!(
            counts.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            vec![48, 6, 6, 6, 11, 9]
        );
    }

    #[test]
    fn total_predicts_length() {
        let cfg = SuiteConfig::paper(DatasetKind::Adult);
        assert_eq!(cfg.total(), 86);
        assert_eq!(SuiteConfig::paper(DatasetKind::Housing).total(), 110);
        assert_eq!(SuiteConfig::small().total(), 12);
    }

    #[test]
    fn names_are_unique() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(100));
        let pop = build_population(&ds, &SuiteConfig::paper(ds.kind), 1).unwrap();
        let mut names: Vec<&str> = pop.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), pop.len());
    }

    #[test]
    fn every_protection_is_valid_and_shaped() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(2).with_records(150));
        let pop = build_population(&ds, &SuiteConfig::small(), 2).unwrap();
        let original = ds.protected_subtable();
        for p in &pop {
            p.data.validate().unwrap();
            assert_eq!(p.data.n_rows(), original.n_rows());
            assert_eq!(p.data.n_attrs(), original.n_attrs());
        }
    }

    #[test]
    fn population_is_seed_deterministic() {
        let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(3).with_records(120));
        let a = build_population(&ds, &SuiteConfig::small(), 9).unwrap();
        let b = build_population(&ds, &SuiteConfig::small(), 9).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.data, y.data);
        }
    }

    #[test]
    fn protections_actually_differ_from_each_other() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(4).with_records(200));
        let pop = build_population(&ds, &SuiteConfig::small(), 4).unwrap();
        let distinct = pop
            .iter()
            .enumerate()
            .flat_map(|(i, a)| pop.iter().skip(i + 1).map(move |b| a.data.hamming(&b.data)))
            .filter(|&d| d > 0)
            .count();
        assert!(distinct > pop.len(), "population lacks diversity");
    }
}
