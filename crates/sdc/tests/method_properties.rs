//! Cross-method contract tests: every protection method, on every paper
//! dataset, must satisfy the interface invariants the evolutionary core
//! relies on.

use cdp_dataset::generators::{Dataset, DatasetKind, GeneratorConfig};
use cdp_dataset::{Hierarchy, SubTable};
use cdp_sdc::{
    Aggregate, BottomCoding, GlobalRecoding, Grouping, LocalSuppression, Mdav, MethodContext,
    MethodFamily, MicroVariant, Microaggregation, Pram, PramMode, ProtectionMethod, RandomSwap,
    RankSwapping, TopCoding,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_methods() -> Vec<Box<dyn ProtectionMethod>> {
    let mut methods: Vec<Box<dyn ProtectionMethod>> = vec![
        Box::new(BottomCoding { fraction: 0.15 }),
        Box::new(TopCoding { fraction: 0.15 }),
        Box::new(GlobalRecoding::uniform(1)),
        Box::new(GlobalRecoding::per_attr(vec![2, 1, 2])),
        Box::new(RankSwapping::new(4)),
        Box::new(Pram::new(0.8, PramMode::Uniform)),
        Box::new(Pram::new(0.8, PramMode::Proportional)),
        Box::new(Pram::new(0.8, PramMode::Invariant)),
        Box::new(Mdav::new(4)),
        Box::new(LocalSuppression { min_class_size: 3 }),
        Box::new(RandomSwap { fraction: 0.3 }),
    ];
    for variant in MicroVariant::all() {
        methods.push(Box::new(Microaggregation::new(4, variant)));
    }
    methods
}

fn each_dataset() -> Vec<Dataset> {
    DatasetKind::all()
        .into_iter()
        .map(|kind| kind.generate(&GeneratorConfig::seeded(41).with_records(130)))
        .collect()
}

#[test]
fn every_method_produces_valid_same_shape_output_on_every_dataset() {
    for ds in each_dataset() {
        let original = ds.protected_subtable();
        let hierarchies = ds.protected_hierarchies();
        let ctx = MethodContext {
            hierarchies: &hierarchies,
        };
        for method in all_methods() {
            let mut rng = StdRng::seed_from_u64(1);
            let masked = method
                .protect(&original, &ctx, &mut rng)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", method.name(), ds.kind.name()));
            masked
                .validate()
                .unwrap_or_else(|e| panic!("{} emitted invalid codes: {e}", method.name()));
            assert_eq!(masked.n_rows(), original.n_rows(), "{}", method.name());
            assert_eq!(masked.n_attrs(), original.n_attrs(), "{}", method.name());
            assert_eq!(
                masked.attr_indices(),
                original.attr_indices(),
                "{}",
                method.name()
            );
        }
    }
}

#[test]
fn every_method_is_reproducible_under_a_fixed_seed() {
    let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(42).with_records(130));
    let original = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };
    for method in all_methods() {
        let a = method
            .protect(&original, &ctx, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let b = method
            .protect(&original, &ctx, &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert_eq!(a, b, "{} is not seed-deterministic", method.name());
    }
}

#[test]
fn every_method_actually_protects_something() {
    // a protection identical to the original would be pointless in the
    // initial population (identity is reachable anyway via theta=1 etc.)
    let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(43).with_records(130));
    let original = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };
    for method in all_methods() {
        let mut rng = StdRng::seed_from_u64(11);
        let masked = method.protect(&original, &ctx, &mut rng).unwrap();
        assert!(
            original.hamming(&masked) > 0,
            "{} left the file untouched",
            method.name()
        );
    }
}

#[test]
fn method_names_are_unique_and_families_consistent() {
    let methods = all_methods();
    let mut names: Vec<String> = methods.iter().map(|m| m.name()).collect();
    names.sort();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate method names");
    for m in &methods {
        // family names render and extensions stay out of the paper's six
        let fam = m.family();
        assert!(!fam.name().is_empty());
        if matches!(
            fam,
            MethodFamily::LocalSuppression | MethodFamily::RandomSwapping
        ) {
            assert!(!MethodFamily::all().contains(&fam));
        }
    }
}

#[test]
fn methods_do_not_depend_on_unprotected_columns() {
    // protecting a sub-table must behave identically regardless of what
    // the rest of the schema contains — guards against accidental coupling
    let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(44).with_records(130));
    let original: SubTable = ds.protected_subtable();
    let hierarchies: Vec<&Hierarchy> = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };
    for method in all_methods() {
        let out1 = method
            .protect(&original, &ctx, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let out2 = method
            .protect(&original.clone(), &ctx, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(out1, out2, "{}", method.name());
    }
}

#[test]
fn aggregate_and_grouping_combinations_differ() {
    // the six microaggregation variants must produce distinct maskings on
    // real data (otherwise the sweep would contain duplicates)
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(45).with_records(130));
    let original = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };
    let outputs: Vec<SubTable> = MicroVariant::all()
        .iter()
        .map(|&variant| {
            Microaggregation::new(6, variant)
                .protect(&original, &ctx, &mut StdRng::seed_from_u64(5))
                .unwrap()
        })
        .collect();
    let mut distinct = 0;
    for i in 0..outputs.len() {
        for j in (i + 1)..outputs.len() {
            if outputs[i].hamming(&outputs[j]) > 0 {
                distinct += 1;
            }
        }
    }
    assert!(
        distinct >= 12,
        "expected most variant pairs to differ, got {distinct}/15"
    );
    let _ = (Grouping::Univariate, Aggregate::Median); // used via all()
}
