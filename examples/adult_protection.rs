//! The paper's first workload end to end: protect the Adult census
//! extract, compare Eq. 1 (mean) against Eq. 2 (max) fitness, and export
//! the best protected file as CSV — what a statistical agency would
//! actually publish.
//!
//! Both experiments run through one [`Session`], so the original file's
//! measure statistics are prepared once and shared.
//!
//! ```sh
//! cargo run --release --example adult_protection
//! ```

use cdp::core::ScatterPoint;
use cdp::dataset::io::{read_table_path, write_table_path, SchemaSource};
use cdp::prelude::*;

fn job(aggregator: ScoreAggregator) -> ProtectionJob {
    // Paper shape, reduced records to finish in ~a minute.
    ProtectionJob::builder()
        .dataset(DatasetKind::Adult)
        .records(400)
        .suite_paper()
        .aggregator(aggregator)
        .iterations(300)
        .seed(7)
        .build()
        .expect("valid job")
}

fn balance(points: &[ScatterPoint]) -> f64 {
    points.iter().map(|p| (p.il - p.dr).abs()).sum::<f64>() / points.len() as f64
}

fn main() {
    let mut session = Session::new();

    println!("== Experiment 1: Eq. 1 (mean of IL and DR) ==");
    let mean_run = session.run(&job(ScoreAggregator::Mean)).expect("job runs");
    let s = mean_run.summary().expect("evolved");
    println!(
        "max {:.2}->{:.2}  mean {:.2}->{:.2}  min {:.2}->{:.2}",
        s.initial_max, s.final_max, s.initial_mean, s.final_mean, s.initial_min, s.final_min
    );
    println!("final |IL-DR| imbalance: {:.2}", balance(&mean_run.points));

    println!("\n== Experiment 2: Eq. 2 (max of IL and DR) ==");
    let max_run = session.run(&job(ScoreAggregator::Max)).expect("job runs");
    assert!(
        max_run.evaluator_reused,
        "second run must reuse the session's prepared evaluator"
    );
    let s = max_run.summary().expect("evolved");
    println!(
        "max {:.2}->{:.2}  mean {:.2}->{:.2}  min {:.2}->{:.2}",
        s.initial_max, s.final_max, s.initial_mean, s.final_mean, s.initial_min, s.final_min
    );
    println!(
        "final |IL-DR| imbalance: {:.2}  (the paper's §3.2 claim: lower than Eq. 1's)",
        balance(&max_run.points)
    );
    println!(
        "(evaluator prepared {} time(s) for 2 runs — session reuse)",
        session.preparations()
    );

    // Publish the winner: the report re-assembles the full table with the
    // protected columns swapped in; write CSV and prove it reads back.
    let best = &max_run.best;
    println!(
        "\nbest protection: `{}` (IL {:.2}, DR {:.2})",
        best.name,
        best.assessment.il(),
        best.assessment.dr()
    );
    let published = max_run.published_best().expect("same schema and shape");
    let out = std::env::temp_dir().join("adult_protected.csv");
    write_table_path(&published, &out).expect("write CSV");
    let back = read_table_path(
        SchemaSource::Fixed(std::sync::Arc::clone(published.schema())),
        &out,
    )
    .expect("round trip");
    assert_eq!(back.n_rows(), published.n_rows());
    println!("published file written to {}", out.display());
}
