//! The paper's first workload end to end: protect the Adult census
//! extract, compare Eq. 1 (mean) against Eq. 2 (max) fitness, and export
//! the best protected file as CSV — what a statistical agency would
//! actually publish.
//!
//! ```sh
//! cargo run --release --example adult_protection
//! ```

use cdp::dataset::io::{write_table_path, SchemaSource};
use cdp::dataset::Table;
use cdp::prelude::*;

fn evolve(ds: &Dataset, aggregator: ScoreAggregator, iters: usize) -> EvolutionOutcome {
    let population = build_population(ds, &SuiteConfig::paper(ds.kind), 7).expect("paper sweep");
    let evaluator =
        Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let config = EvoConfig::builder()
        .iterations(iters)
        .aggregator(aggregator)
        .seed(7)
        .build();
    Evolution::new(evaluator, config)
        .with_named_population(population)
        .expect("compatible population")
        .run()
}

fn balance(points: &[cdp::core::ScatterPoint]) -> f64 {
    points.iter().map(|p| (p.il - p.dr).abs()).sum::<f64>() / points.len() as f64
}

fn main() {
    // Paper shape, reduced records to finish in ~a minute.
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(7).with_records(400));

    println!("== Experiment 1: Eq. 1 (mean of IL and DR) ==");
    let mean_run = evolve(&ds, ScoreAggregator::Mean, 300);
    let s = mean_run.summary();
    println!(
        "max {:.2}->{:.2}  mean {:.2}->{:.2}  min {:.2}->{:.2}",
        s.initial_max, s.final_max, s.initial_mean, s.final_mean, s.initial_min, s.final_min
    );
    println!(
        "final |IL-DR| imbalance: {:.2}",
        balance(&mean_run.final_points)
    );

    println!("\n== Experiment 2: Eq. 2 (max of IL and DR) ==");
    let max_run = evolve(&ds, ScoreAggregator::Max, 300);
    let s = max_run.summary();
    println!(
        "max {:.2}->{:.2}  mean {:.2}->{:.2}  min {:.2}->{:.2}",
        s.initial_max, s.final_max, s.initial_mean, s.final_mean, s.initial_min, s.final_min
    );
    println!(
        "final |IL-DR| imbalance: {:.2}  (the paper's §3.2 claim: lower than Eq. 1's)",
        balance(&max_run.final_points)
    );

    // Publish the winner: re-assemble the full table with the protected
    // columns swapped in, write CSV, and prove it reads back.
    let best = max_run.population.best();
    println!(
        "\nbest protection: `{}` (IL {:.2}, DR {:.2})",
        best.name,
        best.il(),
        best.dr()
    );
    let published: Table = ds
        .table
        .with_subtable(&best.data)
        .expect("same schema and shape");
    let out = std::env::temp_dir().join("adult_protected.csv");
    write_table_path(&published, &out).expect("write CSV");
    let back = cdp::dataset::io::read_table_path(
        SchemaSource::Fixed(std::sync::Arc::clone(published.schema())),
        &out,
    )
    .expect("round trip");
    assert_eq!(back.n_rows(), published.n_rows());
    println!("published file written to {}", out.display());
}
