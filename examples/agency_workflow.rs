//! A statistical agency's end-to-end workflow, as one [`ProtectionJob`]:
//!
//! 1. ingest a raw survey file from disk (CSV),
//! 2. seed a population of protections (built-ins + MDAV),
//! 3. evolve it under Eq. 2 with the adaptive operator schedule,
//! 4. audit the winner — IL/DR breakdown, attribute disclosure (the risk
//!    notion the paper names but does not evaluate), the built-in privacy
//!    audit (k-anonymity, prosecutor/journalist risk),
//! 5. publish the protected file.
//!
//! ```sh
//! cargo run --release --example agency_workflow
//! ```

use std::sync::Arc;

use cdp::dataset::io::{read_table_path, write_table_path, SchemaSource};
use cdp::metrics::dr::attribute_disclosure_avg;
use cdp::prelude::*;
use cdp::sdc::{Mdav, MethodContext, ProtectionMethod};

fn main() {
    let dir = std::env::temp_dir().join("cdp_agency");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // -- 1. the "raw survey" arrives as a CSV file ------------------------
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(77).with_records(400));
    let raw_path = dir.join("survey_raw.csv");
    write_table_path(&ds.table, &raw_path).expect("write raw file");
    // the agency knows the codebook, so it parses against the fixed schema
    // (attribute kinds and category order matter to the measures)
    let table = read_table_path(
        SchemaSource::Fixed(Arc::clone(ds.table.schema())),
        &raw_path,
    )
    .expect("ingest");
    println!(
        "ingested {} records x {} attributes from {}",
        table.n_rows(),
        table.n_attrs(),
        raw_path.display()
    );

    // -- 2.+3. describe the whole job declaratively -----------------------
    // extra candidates beyond the built-in sweep: three MDAV protections
    let original = table.subtable(&ds.protected).expect("protected columns");
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };
    let mut builder = ProtectionJob::builder()
        .table(table, ds.protected.clone())
        .suite_small()
        .aggregator(ScoreAggregator::Max)
        .operator_schedule(cdp::core::OperatorSchedule::adaptive())
        .selection(SelectionWeighting::Tournament { k: 3 })
        .iterations(200)
        .seed(77)
        .audit();
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(77);
    for k in [3, 5, 10] {
        let mdav = Mdav::new(k);
        let data = mdav.protect(&original, &ctx, &mut rng).expect("mdav");
        builder = builder.add_protection(mdav.name(), data);
    }
    let job = builder.build().expect("valid job");

    let mut session = Session::new();
    let report = session
        .run_with(&job, |event| match event {
            JobEvent::PopulationReady { size } => println!("candidate protections: {size}"),
            JobEvent::EvolutionFinished {
                iterations,
                evaluations,
            } => {
                println!(
                    "evolved {iterations} iterations ({} full / {} incremental evaluations)",
                    evaluations.full, evaluations.incremental
                );
            }
            _ => {}
        })
        .expect("job runs");

    // -- 4. audit the winner ----------------------------------------------
    let best = &report.best;
    let assessment = &best.assessment;
    println!("\naudit of `{}`:", best.name);
    println!(
        "  information loss  {:.2}  (CTBIL {:.2}, DBIL {:.2}, EBIL {:.2})",
        assessment.il(),
        assessment.il_parts.ctbil,
        assessment.il_parts.dbil,
        assessment.il_parts.ebil
    );
    println!(
        "  disclosure risk   {:.2}  (ID {:.2}, DBRL {:.2}, PRL {:.2}, RSRL {:.2})",
        assessment.dr(),
        assessment.dr_parts.id,
        assessment.dr_parts.dbrl,
        assessment.dr_parts.prl,
        assessment.dr_parts.rsrl
    );
    // ad-hoc extra measures reuse the session's prepared evaluator
    let (audit_eval, reused) = session
        .evaluator_for(&report.original(), MetricConfig::default())
        .expect("evaluator");
    assert!(reused, "the job already prepared this original");
    println!(
        "  attribute disclosure (extension): {:.2}",
        attribute_disclosure_avg(audit_eval.prepared(), &best.data, 0.1)
    );
    println!("{}", report.privacy.as_ref().expect("audit enabled"));

    // -- 5. publish ---------------------------------------------------------
    let published = report.published_best().expect("same shape");
    let out_path = dir.join("survey_protected.csv");
    write_table_path(&published, &out_path).expect("publish");
    println!("\nprotected file published to {}", out_path.display());
}
