//! A statistical agency's end-to-end workflow:
//!
//! 1. ingest a raw survey file from disk (CSV),
//! 2. seed a population of protections (built-ins + MDAV),
//! 3. evolve it under Eq. 2 with the adaptive operator schedule,
//! 4. audit the winner — IL/DR breakdown, attribute disclosure (the risk
//!    notion the paper names but does not evaluate), uniqueness and
//!    k-anonymity before/after,
//! 5. publish the protected file.
//!
//! ```sh
//! cargo run --release --example agency_workflow
//! ```

use std::sync::Arc;

use cdp::dataset::io::{read_table_path, write_table_path, SchemaSource};
use cdp::dataset::stats::{k_anonymity, uniqueness};
use cdp::metrics::dr::attribute_disclosure_avg;
use cdp::prelude::*;
use cdp::sdc::{Mdav, MethodContext, ProtectionMethod};

fn main() {
    let dir = std::env::temp_dir().join("cdp_agency");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // -- 1. the "raw survey" arrives as a CSV file ------------------------
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(77).with_records(400));
    let raw_path = dir.join("survey_raw.csv");
    write_table_path(&ds.table, &raw_path).expect("write raw file");
    // the agency knows the codebook, so it parses against the fixed schema
    // (attribute kinds and category order matter to the measures)
    let table = read_table_path(
        SchemaSource::Fixed(Arc::clone(ds.table.schema())),
        &raw_path,
    )
    .expect("ingest");
    println!(
        "ingested {} records x {} attributes from {}",
        table.n_rows(),
        table.n_attrs(),
        raw_path.display()
    );

    let original = table.subtable(&ds.protected).expect("protected columns");
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };

    // -- 2. candidate protections: built-in sweep + MDAV -----------------
    let mut population: Vec<(String, SubTable)> = build_population(&ds, &SuiteConfig::small(), 77)
        .expect("sweep")
        .into_iter()
        .map(Into::into)
        .collect();
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(77);
    for k in [3, 5, 10] {
        let mdav = Mdav::new(k);
        let data = mdav.protect(&original, &ctx, &mut rng).expect("mdav");
        population.push((mdav.name(), data));
    }
    println!("candidate protections: {}", population.len());

    // -- 3. evolve --------------------------------------------------------
    let evaluator = Evaluator::new(&original, MetricConfig::default()).expect("evaluator");
    let audit_eval = evaluator.clone();
    let config = EvoConfig::builder()
        .iterations(200)
        .aggregator(ScoreAggregator::Max)
        .operator_schedule(cdp::core::OperatorSchedule::adaptive())
        .selection(SelectionWeighting::Tournament { k: 3 })
        .seed(77)
        .build();
    let outcome = Evolution::new(evaluator, config)
        .with_named_population(population)
        .expect("compatible population")
        .run();
    println!(
        "evolved {} iterations (final mutation rate {:.2})",
        outcome.iterations_run, outcome.final_mutation_rate
    );

    // -- 4. audit the winner ----------------------------------------------
    let best = outcome.population.best();
    let assessment = audit_eval.evaluate(&best.data);
    println!("\naudit of `{}`:", best.name);
    println!(
        "  information loss  {:.2}  (CTBIL {:.2}, DBIL {:.2}, EBIL {:.2})",
        assessment.il(),
        assessment.il_parts.ctbil,
        assessment.il_parts.dbil,
        assessment.il_parts.ebil
    );
    println!(
        "  disclosure risk   {:.2}  (ID {:.2}, DBRL {:.2}, PRL {:.2}, RSRL {:.2})",
        assessment.dr(),
        assessment.dr_parts.id,
        assessment.dr_parts.dbrl,
        assessment.dr_parts.prl,
        assessment.dr_parts.rsrl
    );
    println!(
        "  attribute disclosure (extension): {:.2}",
        attribute_disclosure_avg(audit_eval.prepared(), &best.data, 0.1)
    );
    println!(
        "  uniqueness: {:.1}% -> {:.1}%   k-anonymity: {} -> {}",
        100.0 * uniqueness(&original),
        100.0 * uniqueness(&best.data),
        k_anonymity(&original),
        k_anonymity(&best.data)
    );

    // -- 5. publish ---------------------------------------------------------
    let published = table.with_subtable(&best.data).expect("same shape");
    let out_path = dir.join("survey_protected.csv");
    write_table_path(&published, &out_path).expect("publish");
    println!("\nprotected file published to {}", out_path.display());
}
