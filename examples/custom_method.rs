//! Extending the toolkit: plug a custom protection method into the
//! population and let the evolutionary algorithm recombine it with the
//! built-ins.
//!
//! The custom method here is *mode suppression*: a random fraction of
//! cells is replaced by the attribute's modal category — a crude but
//! common masking heuristic. The example shows the two extension points a
//! downstream user touches: implementing `ProtectionMethod`, and feeding
//! extra protections into the job with `add_protection`.
//!
//! ```sh
//! cargo run --release --example custom_method
//! ```

use cdp::prelude::*;
use cdp::sdc::{MethodContext, MethodFamily, ProtectionMethod};
use rand::Rng;
use rand::RngCore;

/// Replace a random `fraction` of each column's cells with the column mode.
struct ModeSuppression {
    fraction: f64,
}

impl ProtectionMethod for ModeSuppression {
    fn name(&self) -> String {
        format!("mode-suppress(q={:.2})", self.fraction)
    }

    fn family(&self) -> MethodFamily {
        // closest built-in family for reporting purposes
        MethodFamily::GlobalRecoding
    }

    fn protect(
        &self,
        original: &SubTable,
        _ctx: &MethodContext<'_>,
        rng: &mut dyn RngCore,
    ) -> cdp::sdc::Result<SubTable> {
        let mut columns = Vec::with_capacity(original.n_attrs());
        for k in 0..original.n_attrs() {
            let col = original.column(k);
            let c = original.attr(k).n_categories();
            let mut counts = vec![0usize; c];
            for &v in col {
                counts[v as usize] += 1;
            }
            let mode = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &n)| n)
                .map(|(code, _)| code as Code)
                .unwrap_or(0);
            let masked = col
                .iter()
                .map(|&v| if rng.gen_bool(self.fraction) { mode } else { v })
                .collect();
            columns.push(masked);
        }
        Ok(SubTable::new(
            std::sync::Arc::clone(original.schema()),
            original.attr_indices().to_vec(),
            columns,
        )
        .expect("mode codes are valid"))
    }
}

fn main() {
    let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(21).with_records(300));
    let original = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };

    // built-in sweep + three custom protections, one declarative job
    let mut builder = ProtectionJob::builder()
        .generated(ds.clone())
        .suite_small()
        .aggregator(ScoreAggregator::Max)
        .iterations(150)
        .seed(21);
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(21);
    for q in [0.1, 0.25, 0.5] {
        let method = ModeSuppression { fraction: q };
        let data = method.protect(&original, &ctx, &mut rng).expect("protect");
        builder = builder.add_protection(method.name(), data);
    }

    let report = builder
        .build()
        .expect("valid job")
        .run_with(|event| {
            if let JobEvent::PopulationReady { size } = event {
                println!("population: {size} protections (3 custom)");
            }
        })
        .expect("job runs");

    let outcome = report.scalar_outcome().expect("evolved");
    println!("final top five:");
    for ind in outcome.population.members().iter().take(5) {
        println!(
            "  {:<24} score {:6.2}  (IL {:5.2}, DR {:5.2})",
            ind.name,
            ind.score(),
            ind.il(),
            ind.dr()
        );
    }
}
