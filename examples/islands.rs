//! Island-model evolution: the same job, run single-population and as a
//! four-island archipelago with ring migration.
//!
//! ```sh
//! cargo run --release --example islands
//! ```
//!
//! The two runs share one evaluation budget (`iterations` is the *total*
//! across islands, not per island), so the comparison is fair: the
//! archipelago spends nothing extra, it only spends differently —
//! isolated subpopulations with periodic elite exchange instead of one
//! mixing pool. Every line this example prints is deterministic for a
//! fixed (seed, K, M); CI runs it twice and diffs the output to enforce
//! the determinism contract.

use cdp::prelude::*;

/// Run the shared benchmark job at `islands` islands, printing the event
/// telemetry the pipeline streams for island runs.
fn run(islands: usize) -> f64 {
    let job = ProtectionJob::builder()
        .dataset(DatasetKind::German)
        .records(300)
        .suite_small()
        .aggregator(ScoreAggregator::Max)
        .iterations(240)
        .islands(islands)
        .migration_interval(10)
        .seed(5)
        .build()
        .expect("valid job");

    let mut generations = 0usize;
    let mut migrations = Vec::new();
    let report = job
        .run_with(|event| match event {
            JobEvent::Generation(_) | JobEvent::IslandGeneration { .. } => generations += 1,
            JobEvent::Migration {
                generation,
                island,
                emigrants,
            } => migrations.push((*generation, *island, *emigrants)),
            _ => {}
        })
        .expect("job runs");

    println!("K = {islands}:");
    println!("  generations run: {generations} (shared budget)");
    if migrations.is_empty() {
        println!("  migrations: none (single population)");
    } else {
        let emigrants: usize = migrations.iter().map(|(_, _, e)| e).sum();
        println!(
            "  migrations: {} exchanges, {} emigrants, first at generation {}",
            migrations.len(),
            emigrants,
            migrations[0].0
        );
    }
    let s = report.summary().expect("evolved job");
    println!(
        "  min score: {:.4} -> {:.4}  (best `{}`: IL = {:.2}, DR = {:.2})",
        s.initial_min,
        s.final_min,
        report.best.name,
        report.best.assessment.il(),
        report.best.assessment.dr()
    );
    s.final_min
}

fn main() {
    let single = run(1);
    let archipelago = run(4);
    println!(
        "archipelago wins or ties: {:.4} <= {:.4}",
        archipelago, single
    );
    // Same budget, better (or equal) winner — the island model's pitch.
    assert!(
        archipelago <= single + 1e-9,
        "K=4 should not lose to K=1 on this tuned configuration"
    );
}
