//! GA vs the anonymization baseline: optimal lattice k-anonymization.
//!
//! The paper optimizes empirical linkage risk; the anonymization line of
//! work (Samarati, Incognito, OLA, ARX) instead *guarantees* a k and pays
//! whatever information loss that costs. This example runs both paradigms
//! on the same file and scores each with the other's yardstick:
//!
//! * the GA's best protection — one [`ProtectionJob`] — scored by the
//!   paper's measures *and* by the k it incidentally achieves (usually 1:
//!   swapped files keep unique combinations);
//! * the lattice-optimal k-anonymous recodings for k ∈ {2, 3, 5, 10} —
//!   guaranteed k, scored by the paper's IL/DR measures through the same
//!   [`Session`]'s cached evaluator.
//!
//! ```sh
//! cargo run --release --example kanon_baseline
//! ```

use cdp::prelude::*;
use cdp::privacy::{mondrian_anonymize, Partition};

fn main() {
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(7).with_records(300));
    let sub = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    let mut session = Session::new();

    println!("contender            IL      DR   max(IL,DR)   k");
    println!("-------------------------------------------------");

    // --- contender 1: the paper's evolutionary optimizer (Eq. 2) ---
    let job = ProtectionJob::builder()
        .generated(ds.clone())
        .suite_small()
        .aggregator(ScoreAggregator::Max)
        .iterations(150)
        .seed(7)
        .build()
        .expect("valid job");
    let report = session.run(&job).expect("job runs");
    let best = &report.best;
    let ga_k = Partition::of_subtable(&best.data)
        .map(|p| p.min_class_size())
        .unwrap_or(0);
    println!(
        "{:<18} {:6.2}  {:6.2}   {:8.2}   {:3}",
        "ga(max)",
        best.assessment.il(),
        best.assessment.dr(),
        best.assessment.il().max(best.assessment.dr()),
        ga_k
    );

    // the baselines score against the same original: the session hands back
    // the evaluator the GA job already prepared
    let (evaluator, reused) = session
        .evaluator_for(&sub, MetricConfig::default())
        .expect("evaluator");
    assert!(reused, "the job already prepared this original");

    // --- global recoding: optimal k-anonymous lattice node ---
    let recoder = Recoder::new(&sub, hierarchies).expect("nested hierarchies");
    let search = LatticeSearch::new(&sub, &recoder);
    for k in [2usize, 3, 5, 10] {
        match search.optimal(k, CostKind::Discernibility) {
            Ok(found) => {
                let masked = recoder.apply(&sub, &found.node).expect("valid node");
                let a = evaluator.evaluate(&masked);
                println!(
                    "{:<18} {:6.2}  {:6.2}   {:8.2}   {:3}",
                    format!("lattice(k={k})"),
                    a.il(),
                    a.dr(),
                    a.score(ScoreAggregator::Max),
                    found.achieved_k
                );
            }
            Err(e) => println!("lattice(k={k}): {e}"),
        }
    }

    // --- local recoding: Mondrian multidimensional partitioning ---
    for k in [2usize, 3, 5, 10] {
        match mondrian_anonymize(&sub, k) {
            Ok((masked, stats)) => {
                let a = evaluator.evaluate(&masked);
                println!(
                    "{:<18} {:6.2}  {:6.2}   {:8.2}   {:3}",
                    format!("mondrian(k={k})"),
                    a.il(),
                    a.dr(),
                    a.score(ScoreAggregator::Max),
                    stats.achieved_k
                );
            }
            Err(e) => println!("mondrian(k={k}): {e}"),
        }
    }

    println!();
    println!("reading the table:");
    println!(" * the GA minimizes max(IL, DR) but leaves unique records (k = 1);");
    println!(" * full-domain recoding (lattice) guarantees k at rapidly growing IL;");
    println!(" * local recoding (Mondrian) guarantees the same k far cheaper —");
    println!("   the utility/guarantee trade-off separating the paradigms, and the");
    println!("   reason local recoding became the anonymization default.");
}
