//! Scalar fitness (the paper) vs NSGA-II (extension): one run, whole front.
//!
//! The paper runs its algorithm once per aggregator (Eq. 1 mean, Eq. 2 max)
//! and gets one winner per run. NSGA-II selection works on Pareto dominance
//! directly, so one run returns the whole (IL, DR) trade-off curve. This
//! example gives all three contenders a comparable evaluation budget and
//! compares the fronts they discover by 2-D hypervolume.
//!
//! Every contender is the *same* [`ProtectionJob`] builder chain — the
//! scalar-vs-Pareto ablation is literally a one-flag flip (`.nsga()`) —
//! and all three run through one [`Session`], so the original's measure
//! statistics are prepared exactly once.
//!
//! ```sh
//! cargo run --release --example multi_objective
//! ```

use cdp::core::nsga::{hypervolume, HV_REFERENCE};
use cdp::core::ScatterPoint;
use cdp::prelude::*;

fn hv(points: &[ScatterPoint]) -> f64 {
    let objs: Vec<(f64, f64)> = points.iter().map(|p| (p.il, p.dr)).collect();
    hypervolume(&objs, HV_REFERENCE)
}

fn main() {
    let iterations = 150usize;
    let mut session = Session::new();

    let job = |aggregator: ScoreAggregator| {
        ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(250)
            .suite_small()
            .aggregator(aggregator)
            .iterations(iterations)
            .seed(3)
            .build()
            .expect("valid job")
    };
    let pop_size = SuiteConfig::small().total();
    println!(
        "dataset {} / population {} / scalar budget {} iterations",
        DatasetKind::German.name(),
        pop_size,
        iterations
    );
    println!();
    println!("contender        front  hypervolume");
    println!("------------------------------------");

    // --- scalar contenders: the paper's Algorithm 1, Eq. 1 then Eq. 2 ---
    let mut initial_hv = 0.0;
    for aggregator in [ScoreAggregator::Mean, ScoreAggregator::Max] {
        let report = session.run(&job(aggregator)).expect("job runs");
        let outcome = report.scalar_outcome().expect("evolved");
        initial_hv = hv(&outcome.initial);
        println!(
            "ga({:<4})         {:>4}   {:>10.0}",
            aggregator.name(),
            outcome.pareto_front.len(),
            hv(&outcome.pareto_front)
        );
    }

    // --- NSGA-II: the same job shape, one flag flipped, matched budget ---
    // a scalar run spends ~1.5 evaluations per iteration (1 for mutation
    // generations, 2 for crossover generations, both at rate 0.5)
    let generations = (iterations * 3 / 2 / pop_size).max(2);
    let nsga_job = ProtectionJob::builder()
        .dataset(DatasetKind::German)
        .records(250)
        .suite_small()
        .nsga()
        .iterations(generations)
        .seed(3)
        .build()
        .expect("valid job");
    let report = session.run(&nsga_job).expect("job runs");
    assert!(
        report.evaluator_reused,
        "scalar jobs already prepared this original"
    );
    assert_eq!(session.preparations(), 1, "one original, one preparation");
    let front = report.front().expect("nsga outcome");
    println!(
        "nsga2({:>2} gen)    {:>4}   {:>10.0}",
        generations,
        front.archive.len(),
        hv(&front.archive)
    );
    println!("initial pop         -   {initial_hv:>10.0}");

    println!();
    println!("NSGA-II front (IL ascending, * = knee point):");
    let knee = front.knee_index();
    for (i, p) in front.points.iter().enumerate() {
        println!(
            "  {}IL {:6.2}  DR {:6.2}   [{}]",
            if i == knee { "*" } else { " " },
            p.il,
            p.dr,
            p.name
        );
    }
    println!();
    println!(
        "hypervolume over generations: {:.0} -> {:.0}",
        front.initial_hypervolume(),
        front.final_hypervolume()
    );
}
