//! Scalar fitness (the paper) vs NSGA-II (extension): one run, whole front.
//!
//! The paper runs its algorithm once per aggregator (Eq. 1 mean, Eq. 2 max)
//! and gets one winner per run. NSGA-II selection works on Pareto dominance
//! directly, so one run returns the whole (IL, DR) trade-off curve. This
//! example gives all three contenders a comparable evaluation budget and
//! compares the fronts they discover by 2-D hypervolume.
//!
//! The scalar contenders are [`ProtectionJob`]s sharing one [`Session`];
//! NSGA-II reuses the same job's source and population via the job's
//! resolution API, so all three contenders optimize the identical problem.
//!
//! ```sh
//! cargo run --release --example multi_objective
//! ```

use cdp::core::nsga::{hypervolume, Nsga2, NsgaConfig, HV_REFERENCE};
use cdp::core::ScatterPoint;
use cdp::prelude::*;

fn hv(points: &[ScatterPoint]) -> f64 {
    let objs: Vec<(f64, f64)> = points.iter().map(|p| (p.il, p.dr)).collect();
    hypervolume(&objs, HV_REFERENCE)
}

fn main() {
    let iterations = 150usize;
    let mut session = Session::new();

    let job = |aggregator: ScoreAggregator| {
        ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(250)
            .suite_small()
            .aggregator(aggregator)
            .iterations(iterations)
            .seed(3)
            .build()
            .expect("valid job")
    };

    // every contender optimizes this exact source + population
    let src = job(ScoreAggregator::Max)
        .resolve_source()
        .expect("generated source");
    let population = job(ScoreAggregator::Max)
        .seed_population(&src)
        .expect("sweep");
    let pop_size = population.len();
    println!(
        "dataset {} / population {} / scalar budget {} iterations",
        DatasetKind::German.name(),
        pop_size,
        iterations
    );
    println!();
    println!("contender        front  hypervolume");
    println!("------------------------------------");

    // --- scalar contenders: the paper's Algorithm 1, Eq. 1 then Eq. 2 ---
    let mut initial_hv = 0.0;
    for aggregator in [ScoreAggregator::Mean, ScoreAggregator::Max] {
        let report = session.run(&job(aggregator)).expect("job runs");
        let outcome = report.outcome.as_ref().expect("evolved");
        initial_hv = hv(&outcome.initial);
        println!(
            "ga({:<4})         {:>4}   {:>10.0}",
            aggregator.name(),
            outcome.pareto_front.len(),
            hv(&outcome.pareto_front)
        );
    }

    // --- NSGA-II with a matched evaluation budget ---
    // a scalar run spends ~1.5 evaluations per iteration (1 for mutation
    // generations, 2 for crossover generations, both at rate 0.5)
    let generations = (iterations * 3 / 2 / pop_size).max(2);
    let (evaluator, reused) = session
        .evaluator_for(&src.original(), MetricConfig::default())
        .expect("evaluator");
    assert!(reused, "scalar jobs already prepared this original");
    let outcome = Nsga2::new(
        evaluator,
        NsgaConfig {
            generations,
            seed: 3,
            ..NsgaConfig::default()
        },
    )
    .with_named_population(population)
    .expect("compatible population")
    .run();
    println!(
        "nsga2({:>2} gen)    {:>4}   {:>10.0}",
        generations,
        outcome.archive_front.len(),
        hv(&outcome.archive_front)
    );
    println!("initial pop         -   {initial_hv:>10.0}");

    println!();
    println!("NSGA-II front (IL ascending):");
    for p in &outcome.front {
        println!("  IL {:6.2}  DR {:6.2}   [{}]", p.il, p.dr, p.name);
    }
    println!();
    println!(
        "hypervolume over generations: {:.0} -> {:.0}",
        outcome.hypervolume_series.first().copied().unwrap_or(0.0),
        outcome.hypervolume_series.last().copied().unwrap_or(0.0)
    );
}
