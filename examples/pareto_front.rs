//! Extension demo: the Pareto front of (IL, DR) pairs discovered during a
//! run.
//!
//! The paper collapses both objectives into one score and §3.1 shows what
//! is lost that way: unbalanced protections score as well as balanced
//! ones. The `ParetoArchive` keeps every non-dominated pair seen across
//! the whole run — initial protections, surviving offspring, and even
//! offspring that lost their crowding duel — giving the analyst the whole
//! trade-off curve to pick from. The [`JobReport`] carries the front.
//!
//! ```sh
//! cargo run --release --example pareto_front
//! ```

use cdp::prelude::*;

fn main() {
    let report = ProtectionJob::builder()
        .dataset(DatasetKind::Housing)
        .records(300)
        .suite_small()
        .aggregator(ScoreAggregator::Max)
        .iterations(250)
        .seed(9)
        .build()
        .expect("valid job")
        .run()
        .expect("job runs");
    let outcome = report.outcome.as_ref().expect("evolved");

    println!(
        "Pareto front after {} iterations ({} non-dominated points):\n",
        outcome.iterations_run,
        outcome.pareto_front.len()
    );
    println!("{:>8} {:>8}   origin", "IL", "DR");
    for p in &outcome.pareto_front {
        println!("{:>8.2} {:>8.2}   {}", p.il, p.dr, p.name);
    }

    // The scalar winner is on (or dominated-adjacent to) the front:
    let best = &report.best;
    println!(
        "\nscalar best under Eq. 2: `{}` (IL {:.2}, DR {:.2}, score {:.2})",
        best.name,
        best.assessment.il(),
        best.assessment.dr(),
        best.assessment.score(ScoreAggregator::Max)
    );
    println!(
        "the front additionally exposes low-IL and low-DR corner options\n\
         that a single aggregated score hides."
    );
}
