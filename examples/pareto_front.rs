//! Extension demo: the Pareto front of (IL, DR) trade-offs from one
//! NSGA-II job, and publishing any point of it.
//!
//! The paper collapses both objectives into one score and §3.1 shows what
//! is lost that way: unbalanced protections score as well as balanced
//! ones. Flipping a [`ProtectionJob`] into NSGA-II mode (`.nsga()`) turns
//! the same mask→score→evolve workflow into a true multi-objective run:
//! the report carries a [`Front`] whose every member keeps its protected
//! file, so the analyst can publish the knee point (what
//! [`JobReport::published_best`] does) *or* any other trade-off corner.
//!
//! ```sh
//! cargo run --release --example pareto_front
//! ```

use cdp::prelude::*;

fn main() {
    let report = ProtectionJob::builder()
        .dataset(DatasetKind::Housing)
        .records(300)
        .suite_small()
        .nsga()
        .iterations(20)
        .seed(9)
        .build()
        .expect("valid job")
        .run()
        .expect("job runs");
    let front = report.front().expect("nsga job");

    println!(
        "Pareto front after {} generations ({} non-dominated points, \
         hypervolume {:.0} -> {:.0}):\n",
        front.generations_run(),
        front.points.len(),
        front.initial_hypervolume(),
        front.final_hypervolume()
    );
    println!("{:>8} {:>8}   origin", "IL", "DR");
    let knee = front.knee_index();
    for (i, p) in front.points.iter().enumerate() {
        println!(
            "{:>8.2} {:>8.2}   {}{}",
            p.il,
            p.dr,
            p.name,
            if i == knee { "   <- knee point" } else { "" }
        );
    }

    // published_best() substitutes the knee point into the full table …
    let published = report.published_best().expect("same shape");
    println!(
        "\nknee point `{}` published: {} records x {} attributes",
        report.best.name,
        published.n_rows(),
        published.n_attrs()
    );
    // … but any front member is publishable: here, the lowest-DR corner
    let safest = front.members.last().expect("non-empty front");
    let alt = report.publish_member(safest).expect("same shape");
    println!(
        "lowest-DR corner `{}` (IL {:.2}, DR {:.2}) is equally publishable \
         ({} records)",
        safest.name,
        safest.assessment.il(),
        safest.assessment.dr(),
        alt.n_rows()
    );
    println!(
        "\nthe front exposes low-IL and low-DR corner options that a \
         single aggregated score hides."
    );
}
