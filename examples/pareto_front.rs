//! Extension demo: the Pareto front of (IL, DR) pairs discovered during a
//! run.
//!
//! The paper collapses both objectives into one score and §3.1 shows what
//! is lost that way: unbalanced protections score as well as balanced
//! ones. The `ParetoArchive` keeps every non-dominated pair seen across
//! the whole run — initial protections, surviving offspring, and even
//! offspring that lost their crowding duel — giving the analyst the whole
//! trade-off curve to pick from.
//!
//! ```sh
//! cargo run --release --example pareto_front
//! ```

use cdp::prelude::*;

fn main() {
    let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(9).with_records(300));
    let population = build_population(&ds, &SuiteConfig::small(), 9).expect("sweep");
    let evaluator =
        Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let config = EvoConfig::builder()
        .iterations(250)
        .aggregator(ScoreAggregator::Max)
        .seed(9)
        .build();
    let outcome = Evolution::new(evaluator, config)
        .with_named_population(population)
        .expect("compatible population")
        .run();

    println!(
        "Pareto front after {} iterations ({} non-dominated points):\n",
        outcome.iterations_run,
        outcome.pareto_front.len()
    );
    println!("{:>8} {:>8}   origin", "IL", "DR");
    for p in &outcome.pareto_front {
        println!("{:>8.2} {:>8.2}   {}", p.il, p.dr, p.name);
    }

    // The scalar winner is on (or dominated-adjacent to) the front:
    let best = outcome.final_best();
    println!(
        "\nscalar best under Eq. 2: `{}` (IL {:.2}, DR {:.2}, score {:.2})",
        best.name, best.il, best.dr, best.score
    );
    println!(
        "the front additionally exposes low-IL and low-DR corner options\n\
         that a single aggregated score hides."
    );
}
