//! Sweeping PRAM's retention probability with mask-and-score jobs: chart
//! the information-loss / disclosure-risk trade-off — the raw material the
//! evolutionary algorithm optimizes over.
//!
//! Each sweep point is a [`ProtectionJob`] with an iteration budget of 0
//! (mask and score, no evolution); the shared [`Session`] prepares the
//! original's measure statistics exactly once for all 18 points.
//!
//! Also contrasts the three transition-matrix constructions (uniform,
//! proportional, invariant): invariant PRAM preserves expected marginals,
//! which shows up as lower CTBIL at equal theta.
//!
//! ```sh
//! cargo run --release --example pram_tuning
//! ```

use cdp::prelude::*;
use cdp::sdc::{Pram, PramMode};

fn main() {
    let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(4).with_records(500));
    let mut session = Session::new();

    println!("Flare dataset, PRAM sweep (500 records)\n");
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "method", "IL", "DR", "CTBIL", "EBIL", "score-1", "score-2"
    );
    for mode in [
        PramMode::Uniform,
        PramMode::Proportional,
        PramMode::Invariant,
    ] {
        for theta in [0.95, 0.9, 0.8, 0.7, 0.6, 0.5] {
            let pram = Pram::new(theta, mode);
            let name = pram.name();
            let job = ProtectionJob::builder()
                .generated(ds.clone())
                .methods(vec![Box::new(pram)])
                .copies(1)
                .iterations(0) // mask and score only
                .seed(4)
                .build()
                .expect("valid job");
            let report = session.run(&job).expect("job runs");
            let a = &report.best.assessment;
            println!(
                "{:<28} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2} {:>8.2}",
                name,
                a.il(),
                a.dr(),
                a.il_parts.ctbil,
                a.il_parts.ebil,
                a.score(ScoreAggregator::Mean),
                a.score(ScoreAggregator::Max),
            );
        }
        println!();
    }
    println!(
        "(evaluator prepared {} time(s) for 18 sweep points)\n",
        session.preparations()
    );
    println!(
        "Reading the table: theta down -> IL up, DR down. The invariant\n\
         construction keeps CTBIL (marginal damage) lower at equal theta,\n\
         because expected marginals are preserved by design."
    );
}
