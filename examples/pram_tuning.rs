//! Using the metrics crate standalone: sweep PRAM's retention probability
//! and chart the information-loss / disclosure-risk trade-off — the raw
//! material the evolutionary algorithm optimizes over.
//!
//! Also contrasts the three transition-matrix constructions (uniform,
//! proportional, invariant): invariant PRAM preserves expected marginals,
//! which shows up as lower CTBIL at equal theta.
//!
//! ```sh
//! cargo run --release --example pram_tuning
//! ```

use cdp::prelude::*;
use cdp::sdc::{MethodContext, Pram, PramMode, ProtectionMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(4).with_records(500));
    let original = ds.protected_subtable();
    let evaluator = Evaluator::new(&original, MetricConfig::default()).expect("evaluator");
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };

    println!("Flare dataset, PRAM sweep (500 records)\n");
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "method", "IL", "DR", "CTBIL", "EBIL", "score-1", "score-2"
    );
    for mode in [
        PramMode::Uniform,
        PramMode::Proportional,
        PramMode::Invariant,
    ] {
        for theta in [0.95, 0.9, 0.8, 0.7, 0.6, 0.5] {
            let pram = Pram::new(theta, mode);
            let mut rng = StdRng::seed_from_u64(4);
            let masked = pram.protect(&original, &ctx, &mut rng).expect("protect");
            let a = evaluator.evaluate(&masked);
            println!(
                "{:<28} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2} {:>8.2}",
                pram.name(),
                a.il(),
                a.dr(),
                a.il_parts.ctbil,
                a.il_parts.ebil,
                a.score(ScoreAggregator::Mean),
                a.score(ScoreAggregator::Max),
            );
        }
        println!();
    }
    println!(
        "Reading the table: theta down -> IL up, DR down. The invariant\n\
         construction keeps CTBIL (marginal damage) lower at equal theta,\n\
         because expected marginals are preserved by design."
    );
}
