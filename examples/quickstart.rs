//! Quickstart: evolve a better protection for the Adult dataset.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cdp::prelude::*;

fn main() {
    // 1. The original file: a synthetic stand-in for UCI Adult with the
    //    paper's exact shape (1000 × 8; EDUCATION/MARITAL-STATUS/OCCUPATION
    //    protected). Reduced here so the example finishes in seconds.
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(42).with_records(300));
    println!(
        "dataset: {} ({} records, {} attributes, protecting {:?})",
        ds.kind.name(),
        ds.table.n_rows(),
        ds.table.n_attrs(),
        ds.protected
            .iter()
            .map(|&a| ds.table.schema().attr(a).name())
            .collect::<Vec<_>>()
    );

    // 2. Initial population: a sweep of classic SDC protections.
    let population = build_population(&ds, &SuiteConfig::small(), 42).expect("valid sweep");
    println!("initial population: {} protections", population.len());

    // 3. Fitness: IL/DR measures bound to the original file; Eq. 2 (max)
    //    as the paper recommends.
    let evaluator =
        Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");

    // 4. Evolve.
    let config = EvoConfig::builder()
        .iterations(200)
        .aggregator(ScoreAggregator::Max)
        .seed(42)
        .build();
    let outcome = Evolution::new(evaluator, config)
        .with_named_population(population)
        .expect("compatible population")
        .run();

    // 5. Report.
    let s = outcome.summary();
    println!(
        "max score:  {:6.2} -> {:6.2}  ({:+.2}%)",
        s.initial_max,
        s.final_max,
        -s.improvement_max()
    );
    println!(
        "mean score: {:6.2} -> {:6.2}  ({:+.2}%)",
        s.initial_mean,
        s.final_mean,
        -s.improvement_mean()
    );
    println!(
        "min score:  {:6.2} -> {:6.2}  ({:+.2}%)",
        s.initial_min,
        s.final_min,
        -s.improvement_min()
    );
    let best = outcome.final_best();
    println!(
        "best protection: `{}` with IL = {:.2}, DR = {:.2}",
        best.name, best.il, best.dr
    );
}
