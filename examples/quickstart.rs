//! Quickstart: evolve a better protection for the Adult dataset — the
//! whole workflow as one declarative [`ProtectionJob`].
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cdp::prelude::*;

fn main() {
    // One job describes the paper's whole pipeline: the original file (a
    // synthetic stand-in for UCI Adult, reduced so the example finishes in
    // seconds), the initial SDC population, the fitness (Eq. 2 max, as the
    // paper recommends), and the evolution budget.
    let job = ProtectionJob::builder()
        .dataset(DatasetKind::Adult)
        .records(300)
        .suite_small()
        .aggregator(ScoreAggregator::Max)
        .iterations(200)
        // optional: .snapshot_cache(SnapshotCacheConfig::new("snapshots"))
        // persists the prepared evaluator to disk, so later runs (even in
        // new processes) rehydrate it instead of re-preparing
        .seed(42)
        .build()
        .expect("valid job");

    // Run it, streaming progress through the shared event channel.
    let report = job
        .run_with(|event| match event {
            JobEvent::SourceReady {
                rows,
                attrs,
                protected,
            } => println!("dataset: {rows} records, {attrs} attributes, {protected} protected"),
            JobEvent::PopulationReady { size } => {
                println!("initial population: {size} protections")
            }
            _ => {}
        })
        .expect("job runs");

    // Report.
    let s = report.summary().expect("evolved job");
    println!(
        "max score:  {:6.2} -> {:6.2}  ({:+.2}%)",
        s.initial_max,
        s.final_max,
        -s.improvement_max()
    );
    println!(
        "mean score: {:6.2} -> {:6.2}  ({:+.2}%)",
        s.initial_mean,
        s.final_mean,
        -s.improvement_mean()
    );
    println!(
        "min score:  {:6.2} -> {:6.2}  ({:+.2}%)",
        s.initial_min,
        s.final_min,
        -s.improvement_min()
    );
    let best = &report.best;
    println!(
        "best protection: `{}` with IL = {:.2}, DR = {:.2}",
        best.name,
        best.assessment.il(),
        best.assessment.dr()
    );
}
