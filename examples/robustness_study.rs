//! The paper's §3.3 robustness experiment: remove the best 5% / 10% of the
//! initial protections (Solar Flare dataset, Eq. 2 fitness) and show the
//! evolution still reaches nearly the same best score.
//!
//! ```sh
//! cargo run --release --example robustness_study
//! ```

use cdp::prelude::*;

fn run(ds: &Dataset, drop_fraction: f64) -> (usize, f64, f64) {
    let population = build_population(ds, &SuiteConfig::paper(ds.kind), 11).expect("paper sweep");
    let evaluator =
        Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let config = EvoConfig::builder()
        .iterations(250)
        .aggregator(ScoreAggregator::Max)
        .seed(11)
        .build();
    let mut evolution = Evolution::new(evaluator, config)
        .with_named_population(population)
        .expect("compatible population");
    if drop_fraction > 0.0 {
        evolution = evolution
            .drop_best_fraction(drop_fraction)
            .expect("population loaded");
    }
    let outcome = evolution.run();
    let s = outcome.summary();
    (outcome.population.len(), s.initial_min, s.final_min)
}

fn main() {
    let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(11).with_records(400));
    println!("Flare dataset, Eq. 2 fitness, 250 iterations\n");
    println!(
        "{:<18} {:>4} {:>12} {:>11}",
        "population", "N", "initial min", "final min"
    );

    let (n_full, init_full, final_full) = run(&ds, 0.0);
    println!(
        "{:<18} {n_full:>4} {init_full:>12.2} {final_full:>11.2}",
        "full"
    );

    for (label, fraction, paper_gap) in [
        ("best 5% removed", 0.05, 1.33),
        ("best 10% removed", 0.10, 1.08),
    ] {
        let (n, init, fin) = run(&ds, fraction);
        println!(
            "{label:<18} {n:>4} {init:>12.2} {fin:>11.2}   gap {:+.2} (paper: +{paper_gap})",
            fin - final_full
        );
    }
    println!(
        "\nThe paper's conclusion: the evolutionary search recovers protections\n\
         close to the removed leaders — the approach does not depend on the\n\
         best initial individuals being present."
    );
}
