//! The paper's §3.3 robustness experiment: remove the best 5% / 10% of the
//! initial protections (Solar Flare dataset, Eq. 2 fitness) and show the
//! evolution still reaches nearly the same best score.
//!
//! The three runs differ only in `drop_best_fraction`, so they share one
//! [`Session`]: the original is generated and prepared once.
//!
//! ```sh
//! cargo run --release --example robustness_study
//! ```

use cdp::prelude::*;

fn run(session: &mut Session, drop_fraction: f64) -> (usize, f64, f64) {
    let job = ProtectionJob::builder()
        .dataset(DatasetKind::Flare)
        .records(400)
        .suite_paper()
        .aggregator(ScoreAggregator::Max)
        .iterations(250)
        .seed(11)
        .drop_best_fraction(drop_fraction)
        .build()
        .expect("valid job");
    let report = session.run(&job).expect("job runs");
    let outcome = report.scalar_outcome().expect("evolved");
    let s = outcome.summary();
    (outcome.population.len(), s.initial_min, s.final_min)
}

fn main() {
    let mut session = Session::new();
    println!("Flare dataset, Eq. 2 fitness, 250 iterations\n");
    println!(
        "{:<18} {:>4} {:>12} {:>11}",
        "population", "N", "initial min", "final min"
    );

    let (n_full, init_full, final_full) = run(&mut session, 0.0);
    println!(
        "{:<18} {n_full:>4} {init_full:>12.2} {final_full:>11.2}",
        "full"
    );

    for (label, fraction, paper_gap) in [
        ("best 5% removed", 0.05, 1.33),
        ("best 10% removed", 0.10, 1.08),
    ] {
        let (n, init, fin) = run(&mut session, fraction);
        println!(
            "{label:<18} {n:>4} {init:>12.2} {fin:>11.2}   gap {:+.2} (paper: +{paper_gap})",
            fin - final_full
        );
    }
    println!(
        "\n(evaluator prepared {} time(s) for 3 runs)",
        session.preparations()
    );
    println!(
        "\nThe paper's conclusion: the evolutionary search recovers protections\n\
         close to the removed leaders — the approach does not depend on the\n\
         best initial individuals being present."
    );
}
