//! Shared session: many threads, one evaluator cache — the in-process
//! form of what `cdp serve` does over TCP.
//!
//! ```sh
//! cargo run --release --example shared_session
//! ```
//!
//! Four worker threads each run a job. Three of them target the same
//! original (Adult, seed 7 — the seed generates the table, so same seed
//! means same original), so the expensive evaluator preparation —
//! hierarchy walks, record linkage tables — is paid **once** and the
//! other two block briefly on that key and then hit the cache. The
//! German job prepares its own evaluator in parallel. `SessionStats`
//! shows the ledger at the end.

use cdp::prelude::*;

fn main() {
    let adult = |iterations: usize| {
        ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .records(200)
            .suite_small()
            .iterations(iterations)
            .seed(7)
            .build()
            .expect("valid job")
    };
    let german = ProtectionJob::builder()
        .dataset(DatasetKind::German)
        .records(200)
        .suite_small()
        .iterations(60)
        .seed(9)
        .build()
        .expect("valid job");

    // A SharedSession is cheap to clone; every clone sees the same cache.
    let session = SharedSession::new();
    let jobs = vec![
        ("adult, 40 iters", adult(40)),
        ("adult, 60 iters", adult(60)),
        ("adult, 80 iters", adult(80)),
        ("german, 60 iters", german),
    ];
    std::thread::scope(|scope| {
        for (label, job) in &jobs {
            let session = session.clone();
            scope.spawn(move || {
                let report = session
                    .run_with(job, |event| {
                        if let JobEvent::EvaluatorReady { reused } = event {
                            let verdict = if *reused { "cache hit" } else { "prepared" };
                            println!("{label}: evaluator {verdict}");
                        }
                    })
                    .expect("job runs");
                let best = &report.best;
                println!(
                    "{label}: best `{}` IL = {:.2}, DR = {:.2}",
                    best.name,
                    best.assessment.il(),
                    best.assessment.dr()
                );
            });
        }
    });

    // The ledger: 4 jobs, 2 distinct originals, 2 preparations total.
    let stats = session.stats();
    println!(
        "cache: {} preparations, {} hits, {} misses ({} evaluators, ~{} KiB resident)",
        stats.preparations,
        stats.hits,
        stats.misses,
        stats.cached,
        stats.approx_bytes / 1024
    );
    assert_eq!(stats.preparations, 2, "one per distinct original");
    assert_eq!(stats.hits + stats.misses, 4, "one lookup per job");
    if let Some(rate) = stats.hit_rate() {
        println!("hit rate: {:.0}%", rate * 100.0);
    }
}
