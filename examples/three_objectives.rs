//! Three-objective protection: (IL, DR, ε-leakage) as one NSGA-II vector.
//!
//! The canonical (IL, DR) pair is the floor of the objective vector, not
//! its ceiling. This example appends the empirical-LDP leakage objective
//! (`eps`) to the vector, seeds the population with an ε-calibrated
//! invariant PRAM member, and runs the same declarative job pipeline as
//! every other example — dominance, crowding, hypervolume, and the knee
//! all operate over the 3-component vectors, and the audit echoes the
//! calibrated budget.
//!
//! The run is deterministic end to end: CI executes it twice and diffs
//! the output byte-for-byte.
//!
//! ```sh
//! cargo run --release --example three_objectives
//! ```

use cdp::prelude::*;

fn main() {
    let epsilon = 1.5;
    let report = ProtectionJob::builder()
        .dataset(DatasetKind::German)
        .records(80)
        .suite_small()
        .nsga()
        .objective("eps") // minimize empirical-LDP leakage as a third axis
        .epsilon_pram(epsilon) // ε-calibrated invariant PRAM member
        .iterations(8)
        .seed(11)
        .audit()
        .build()
        .expect("valid job")
        .run()
        .expect("job runs");

    let front = report.front().expect("nsga outcome");
    assert_eq!(front.objective_keys, ["il", "dr", "eps"]);

    println!(
        "dataset {} / objectives {} / eps-PRAM budget {epsilon}",
        DatasetKind::German.name(),
        front.objective_keys.join(",")
    );
    println!();
    println!("final front (IL ascending, * = knee over all 3 axes):");
    let knee = front.knee_index();
    for (i, p) in front.points.iter().enumerate() {
        println!(
            "  {}IL {:6.2}  DR {:6.2}  EPS {:6.2}   [{}]",
            if i == knee { "*" } else { " " },
            p.objectives[0],
            p.objectives[1],
            p.objectives[2],
            p.name
        );
    }
    println!();
    println!(
        "front size {} -> {}, hypervolume {:.0} -> {:.0}",
        front.initial.len(),
        front.points.len(),
        front.initial_hypervolume(),
        front.final_hypervolume()
    );

    // the published winner is the knee point, balanced over all 3 axes
    let best = &report.best;
    println!(
        "published winner: {} (IL {:.2}, DR {:.2})",
        best.name,
        best.assessment.il(),
        best.assessment.dr()
    );

    // the calibrated budget travels with the audit
    let privacy = report.privacy.as_ref().expect("audited");
    assert_eq!(privacy.epsilon, Some(epsilon));
    println!(
        "audit: k={} eps={:.3}",
        privacy.k_anonymity.k,
        privacy.epsilon.expect("calibrated run")
    );
}
