#![warn(missing_docs)]

//! # cdp — Categorical Data Protection
//!
//! Facade crate for the reproduction of Marés & Torra, *"An Evolutionary
//! Optimization Approach for Categorical Data Protection"* (PAIS/EDBT 2012).
//!
//! The workspace is organized as four library crates plus a benchmark
//! harness; this crate re-exports all of them so downstream users can depend
//! on a single name:
//!
//! * [`dataset`] — categorical microdata model, CSV I/O, generalization
//!   hierarchies, and seeded generators for the paper's four evaluation
//!   datasets.
//! * [`sdc`] — the six statistical disclosure control methods used to build
//!   the initial populations (microaggregation, top/bottom coding, global
//!   recoding, rank swapping, PRAM).
//! * [`metrics`] — information loss (CTBIL, DBIL, EBIL) and disclosure risk
//!   (ID, DBRL, PRL, RSRL) measures, score aggregators, and the cached
//!   evaluator.
//! * [`core`] — the paper's contribution: the post-masking evolutionary
//!   algorithm.
//! * [`privacy`] — syntactic privacy models (k-anonymity, l-diversity,
//!   t-closeness), re-identification risk, and the lattice-based optimal
//!   recoding baseline (Samarati-style search over generalization
//!   hierarchies).
//!
//! ## Quickstart
//!
//! ```
//! use cdp::prelude::*;
//!
//! // 1. Original file (synthetic stand-in for UCI Adult, paper shape).
//! let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(7).with_records(120));
//!
//! // 2. Initial population: a small sweep of SDC protections.
//! let suite = SuiteConfig::small();
//! let population = build_population(&ds, &suite, 7).unwrap();
//!
//! // 3. Fitness: mean of IL and DR (the paper's Eq. 1).
//! let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
//!
//! // 4. Evolve.
//! let config = EvoConfig::builder()
//!     .iterations(40)
//!     .aggregator(ScoreAggregator::Mean)
//!     .seed(7)
//!     .build();
//! let outcome = Evolution::new(evaluator, config)
//!     .with_named_population(population)
//!     .unwrap()
//!     .run();
//! assert!(outcome.final_best().score <= outcome.initial_best().score);
//! ```

pub use cdp_core as core;
pub use cdp_dataset as dataset;
pub use cdp_metrics as metrics;
pub use cdp_privacy as privacy;
pub use cdp_sdc as sdc;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use cdp_core::{
        EvoConfig, Evolution, EvolutionOutcome, Individual, Population, ReplacementPolicy,
        SelectionWeighting, StopCondition,
    };
    pub use cdp_dataset::generators::{Dataset, DatasetKind, GeneratorConfig};
    pub use cdp_dataset::{AttrKind, Attribute, Code, Hierarchy, Schema, SubTable, Table};
    pub use cdp_metrics::{
        Assessment, DrBreakdown, Evaluator, IlBreakdown, MetricConfig, ScoreAggregator,
    };
    pub use cdp_privacy::{CostKind, LatticeSearch, PrivacyReport, Recoder};
    pub use cdp_sdc::{build_population, ProtectionMethod, SuiteConfig};
}
