#![warn(missing_docs)]

//! # cdp — Categorical Data Protection
//!
//! Facade crate for the reproduction of Marés & Torra, *"An Evolutionary
//! Optimization Approach for Categorical Data Protection"* (PAIS/EDBT 2012).
//!
//! The workspace is organized as five library crates plus a benchmark
//! harness; this crate re-exports all of them so downstream users can depend
//! on a single name, and adds the [`pipeline`] layer that drives them as one
//! declarative job:
//!
//! * [`dataset`] — categorical microdata model, CSV I/O, generalization
//!   hierarchies, and seeded generators for the paper's four evaluation
//!   datasets.
//! * [`sdc`] — the six statistical disclosure control methods used to build
//!   the initial populations (microaggregation, top/bottom coding, global
//!   recoding, rank swapping, PRAM).
//! * [`metrics`] — information loss (CTBIL, DBIL, EBIL) and disclosure risk
//!   (ID, DBRL, PRL, RSRL) measures, score aggregators, and the cached
//!   evaluator.
//! * [`core`] — the paper's contribution: the post-masking evolutionary
//!   algorithm.
//! * [`privacy`] — syntactic privacy models (k-anonymity, l-diversity,
//!   t-closeness), re-identification risk, and the lattice-based optimal
//!   recoding baseline (Samarati-style search over generalization
//!   hierarchies).
//! * [`pipeline`] — the unified job API: [`pipeline::ProtectionJob`] (one
//!   declarative builder for the whole mask → score → evolve → audit
//!   workflow, scalar or NSGA-II via [`pipeline::OptimizerMode`]),
//!   [`pipeline::Session`] (evaluator preparation amortized across jobs of
//!   either mode), and [`pipeline::JobReport`] (mode-aware
//!   [`pipeline::JobOutcome`]).
//!
//! ## Quickstart
//!
//! The paper's whole workflow — mask the original with an SDC suite, score
//! IL/DR, evolve the population, audit the winner — is one builder chain.
//! Offspring are delta-evaluated by default (patch-based re-assessment,
//! bit-identical to full scoring — opt out with
//! `.incremental_mutation(false).incremental_crossover(false)` if you want
//! to pay the full O(n²) per offspring), and the linkage measures run on
//! the blocked distinct-pattern scans by default (`link=blocked` in the
//! CLI job grammar; `.linkage(LinkageMode::Pairs)` or `link=pairs` opts
//! back into the all-pairs reference scans — the credits, and hence every
//! published number, are identical either way):
//!
//! ```
//! use cdp::prelude::*;
//!
//! let report = ProtectionJob::builder()
//!     .dataset(DatasetKind::Adult)         // original file (paper shape)
//!     .records(120)                        // reduced for doc-test speed
//!     .suite_small()                       // initial SDC population
//!     .aggregator(ScoreAggregator::Mean)   // fitness: the paper's Eq. 1
//!     .iterations(40)                      // evolution budget
//!     .islands(4)                          // island-model run, same budget
//!     .seed(7)
//!     .audit()                             // privacy audit of the winner
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! let summary = report.summary().expect("evolved job");
//! assert!(summary.final_min <= summary.initial_min);
//! assert!(report.privacy.as_ref().expect("audited").k_anonymity.k >= 1);
//! assert_eq!(report.published_best().unwrap().n_rows(), 120);
//! ```
//!
//! ## Multi-objective mode
//!
//! NSGA-II is a first-class job mode, not a separate API: flip the same
//! builder chain with [`pipeline::ProtectionJobBuilder::nsga`] and the
//! run optimizes Pareto dominance over (IL, DR) directly, returning the
//! whole trade-off curve as a [`pipeline::Front`].
//! [`pipeline::JobReport::published_best`] then publishes the front's
//! *knee point* — the balanced trade-off — and any other front member is
//! publishable via [`pipeline::JobReport::publish_member`]:
//!
//! ```
//! use cdp::prelude::*;
//!
//! let report = ProtectionJob::builder()
//!     .dataset(DatasetKind::Adult)
//!     .records(100)
//!     .suite_small()
//!     .nsga()                              // Pareto dominance over (IL, DR)
//!     .iterations(8)                       // now counts generations
//!     .seed(7)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! let front = report.front().expect("nsga job");
//! assert!(!front.members.is_empty());
//! assert!(front.final_hypervolume() >= front.initial_hypervolume() - 1e-9);
//! // the published winner is the front's knee point
//! assert_eq!(report.best.data, front.knee().data);
//! assert_eq!(report.published_best().unwrap().n_rows(), 100);
//! ```
//!
//! ## Beyond (IL, DR): extending the objective vector
//!
//! The canonical pair is the floor of the objective vector, not its
//! ceiling. Under `.nsga()`, `.objective("eps")` appends the empirical-LDP
//! leakage objective — and `.objective("util")` a task-utility gap — so
//! dominance, crowding, hypervolume, and the knee all work over the longer
//! vector. `.epsilon_pram(1.5)` seeds the population with an ε-calibrated
//! invariant PRAM member (per-attribute retention `e^ε/(e^ε + K − 1)`,
//! drawn from its own seeded stream) and echoes the budget in the privacy
//! audit. A job that never calls `.objective(...)` keeps the canonical
//! pair and reproduces the two-objective RNG streams bit-identically:
//!
//! ```
//! use cdp::prelude::*;
//!
//! let report = ProtectionJob::builder()
//!     .dataset(DatasetKind::German)
//!     .records(80)
//!     .suite_small()
//!     .nsga()                              // objectives are nsga-only
//!     .objective("eps")                    // minimize leakage as a third axis
//!     .epsilon_pram(1.5)                   // ε-calibrated invariant PRAM member
//!     .iterations(6)
//!     .seed(11)
//!     .audit()
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! let front = report.front().expect("nsga job");
//! assert_eq!(front.objective_keys, ["il", "dr", "eps"]);
//! // every front member carries a 3-component objective vector …
//! assert!(front.points.iter().all(|p| p.objectives.len() == 3));
//! // … the published winner is still the knee, now balanced over 3 axes
//! assert_eq!(report.best.data, front.knee().data);
//! // and the calibrated budget surfaces in the audit
//! assert_eq!(report.privacy.as_ref().unwrap().epsilon, Some(1.5));
//! ```
//!
//! ## Serving jobs concurrently — `cdp serve`
//!
//! The pipeline doubles as a long-lived protection service. A
//! [`pipeline::SharedSession`] is the concurrency-safe form of
//! [`pipeline::Session`] — cloneable, `&self` methods, one shared
//! evaluator cache — so N threads (or N clients of the `cdp serve`
//! subcommand) running jobs against the same original trigger exactly
//! **one** preparation; the rest block briefly on that key and then hit
//! the cache. [`pipeline::SessionStats`] reports the counters (also
//! streamed per job as [`pipeline::JobEvent::CacheStats`]); the hit rate
//! `hits / (hits + misses)` is the service's headline metric.
//!
//! ```
//! use cdp::prelude::*;
//!
//! let job = ProtectionJob::builder()
//!     .dataset(DatasetKind::German)
//!     .records(80)
//!     .iterations(5)
//!     .seed(3)
//!     .build()
//!     .unwrap();
//! let session = SharedSession::new();
//! std::thread::scope(|scope| {
//!     for _ in 0..2 {
//!         let session = session.clone();
//!         let job = &job;
//!         scope.spawn(move || session.run(job).unwrap());
//!     }
//! });
//! assert_eq!(session.stats().preparations, 1); // hot original, one prep
//! assert!(session.stats().hit_rate().unwrap() > 0.0);
//! ```
//!
//! Over the wire, `cdp serve --addr 127.0.0.1:7171` accepts the same
//! canonical `key=value` job grammar the CLI uses, line-delimited:
//! `JOB dataset=adult records=120 iters=40 seed=7` streams one `EVENT …`
//! line per [`pipeline::JobEvent`] and ends with a `DONE …` summary
//! (winner IL/DR breakdown, eval counts, cache-hit flag) or a one-line
//! `ERR …`; `STATS` returns the [`pipeline::SessionStats`] counters. The
//! determinism contract holds across the wire: a job submitted to the
//! server produces the bit-identical summary to [`pipeline::Session::run`]
//! on the same spec — asserted end-to-end in the server tests.
//!
//! ## Low-level entry points
//!
//! The free-form APIs the pipeline is built from stay public — existing
//! experiments keep compiling, and a job reproduces their RNG streams
//! exactly:
//!
//! ```
//! use cdp::prelude::*;
//!
//! let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(7).with_records(120));
//! let population = build_population(&ds, &SuiteConfig::small(), 7).unwrap();
//! let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
//! let config = EvoConfig::builder()
//!     .iterations(40)
//!     .aggregator(ScoreAggregator::Mean)
//!     .seed(7)
//!     .build();
//! let outcome = Evolution::new(evaluator, config)
//!     .with_named_population(population)
//!     .unwrap()
//!     .run();
//! assert!(outcome.final_best().score <= outcome.initial_best().score);
//! ```

pub use cdp_core as core;
pub use cdp_dataset as dataset;
pub use cdp_metrics as metrics;
pub use cdp_privacy as privacy;
pub use cdp_sdc as sdc;

pub mod pipeline;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use cdp_core::{
        EvalCounts, EvoConfig, Evolution, EvolutionOutcome, Individual, IslandConfig, IslandEvent,
        IslandModel, IslandTiming, Population, ReplacementPolicy, SelectionWeighting,
        StopCondition, Topology,
    };
    pub use cdp_dataset::generators::{Dataset, DatasetKind, GeneratorConfig};
    pub use cdp_dataset::{AttrKind, Attribute, Code, Hierarchy, Schema, SubTable, Table};
    pub use cdp_metrics::{
        Assessment, DrBreakdown, Evaluator, IlBreakdown, LinkageMode, MetricConfig, ObjectiveSet,
        ObjectiveVector, ScoreAggregator,
    };
    pub use cdp_privacy::{CostKind, LatticeSearch, PrivacyReport, Recoder};
    pub use cdp_sdc::{build_population, ProtectionMethod, SuiteConfig};

    pub use crate::pipeline::{
        BestProtection, CacheEntryStats, DataSource, Front, JobEvent, JobOutcome, JobReport,
        OptimizerMode, PipelineError, PopulationSpec, ProtectionJob, Session, SessionStats,
        SharedSession, SnapshotCacheConfig, SuiteKind,
    };
}
