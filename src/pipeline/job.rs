//! The declarative job description and its builder.

use std::fmt;

use cdp_core::{EvoConfig, NsgaConfig, OperatorSchedule, ReplacementPolicy, SelectionWeighting};
use cdp_dataset::generators::{Dataset, DatasetKind, GeneratorConfig};
use cdp_dataset::{stats, AttrKind, Hierarchy, SubTable, Table};
use cdp_metrics::{LinkageMode, MetricConfig, ObjectiveSet, ScoreAggregator};
use cdp_sdc::{build_population_from, MethodContext, Pram, ProtectionMethod, SuiteConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::report::JobReport;
use super::session::Session;
use super::shared::SnapshotCacheConfig;
use super::stages::JobEvent;
use super::{PipelineError, Result};

/// Where the original file comes from.
///
/// The `Debug` representation is a compact summary (method lists and
/// tables are large).
pub enum DataSource {
    /// One of the paper's four evaluation datasets, generated on demand.
    Generated {
        /// Which dataset to generate.
        kind: DatasetKind,
        /// Record-count override (`None` = the paper's 1000/1066).
        records: Option<usize>,
        /// Generator seed (`None` = the job seed).
        seed: Option<u64>,
    },
    /// An already-generated dataset (reuses its hierarchies verbatim).
    Dataset(Dataset),
    /// A loaded table (CSV ingest, upstream pipeline output, …).
    Table {
        /// The full original file.
        table: Table,
        /// Indices of the attributes to protect.
        protected: Vec<usize>,
        /// One generalization hierarchy per protected attribute, in
        /// protected order; `None` auto-builds them (range merging for
        /// ordinal attributes, frequency folding for nominal ones).
        hierarchies: Option<Vec<Hierarchy>>,
    },
}

/// A resolved data source: the concrete table a job will run against.
pub struct SourceData {
    /// The evaluation dataset kind, when the source was generated.
    pub kind: Option<DatasetKind>,
    /// The full original file.
    pub table: Table,
    /// Indices of the protected attributes.
    pub protected: Vec<usize>,
    /// One hierarchy per protected attribute, in protected order. Empty
    /// when the pipeline resolved a table source for a pre-masked
    /// ([`PopulationSpec::Named`]) job, which never masks;
    /// [`ProtectionJob::resolve_source`] always fills it.
    pub hierarchies: Vec<Hierarchy>,
}

impl SourceData {
    /// The sub-table of protected columns (what methods mask and measures
    /// score).
    pub fn original(&self) -> SubTable {
        self.table
            .subtable(&self.protected)
            .expect("protected indices validated at resolve time")
    }

    /// Hierarchy references in the layout protection methods expect.
    pub fn hierarchy_refs(&self) -> Vec<&Hierarchy> {
        self.hierarchies.iter().collect()
    }
}

impl fmt::Debug for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataSource::Generated {
                kind,
                records,
                seed,
            } => f
                .debug_struct("Generated")
                .field("kind", kind)
                .field("records", records)
                .field("seed", seed)
                .finish(),
            DataSource::Dataset(ds) => f.debug_tuple("Dataset").field(&ds.kind).finish(),
            DataSource::Table {
                table, protected, ..
            } => f
                .debug_struct("Table")
                .field("rows", &table.n_rows())
                .field("attrs", &table.n_attrs())
                .field("protected", protected)
                .finish(),
        }
    }
}

impl fmt::Debug for PopulationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopulationSpec::Suite(kind) => f.debug_tuple("Suite").field(kind).finish(),
            PopulationSpec::Custom(cfg) => f
                .debug_struct("Custom")
                .field("total", &cfg.total())
                .finish(),
            PopulationSpec::Methods(methods) => {
                let names: Vec<String> = methods.iter().map(|m| m.name()).collect();
                f.debug_tuple("Methods").field(&names).finish()
            }
            PopulationSpec::Named(items) => f
                .debug_struct("Named")
                .field("count", &items.len())
                .finish(),
        }
    }
}

impl fmt::Debug for ProtectionJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let optimizer = match &self.mode {
            OptimizerMode::Scalar(cfg) => format!("scalar({})", cfg.aggregator.name()),
            OptimizerMode::Nsga(_) => "nsga".to_string(),
        };
        f.debug_struct("ProtectionJob")
            .field("source", &self.source)
            .field("population", &self.population)
            .field("copies", &self.copies)
            .field("extra", &self.extra.len())
            .field("optimizer", &optimizer)
            .field("objectives", &self.objectives)
            .field("pram_epsilon", &self.pram_epsilon)
            .field("iterations", &self.iterations)
            .field("drop_best_fraction", &self.drop_best_fraction)
            .field("audit", &self.audit)
            .field("seed", &self.seed)
            .finish()
    }
}

impl DataSource {
    /// `need_hierarchies = false` skips auto-building hierarchies for a
    /// table source (used when the population recipe never masks — e.g. a
    /// pre-masked [`PopulationSpec::Named`] job like `cdp evaluate`).
    pub(crate) fn resolve(&self, default_seed: u64, need_hierarchies: bool) -> Result<SourceData> {
        match self {
            DataSource::Generated {
                kind,
                records,
                seed,
            } => {
                let mut cfg = GeneratorConfig::seeded(seed.unwrap_or(default_seed));
                if let Some(n) = records {
                    cfg = cfg.with_records(*n);
                }
                let ds = kind.generate(&cfg);
                Ok(SourceData {
                    kind: Some(*kind),
                    hierarchies: ds.protected_hierarchies().into_iter().cloned().collect(),
                    table: ds.table,
                    protected: ds.protected,
                })
            }
            DataSource::Dataset(ds) => Ok(SourceData {
                kind: Some(ds.kind),
                hierarchies: ds.protected_hierarchies().into_iter().cloned().collect(),
                table: ds.table.clone(),
                protected: ds.protected.clone(),
            }),
            DataSource::Table {
                table,
                protected,
                hierarchies,
            } => {
                if protected.is_empty() {
                    return Err(PipelineError::InvalidJob(
                        "a table source needs at least one protected attribute".into(),
                    ));
                }
                for &j in protected {
                    if j >= table.n_attrs() {
                        return Err(PipelineError::InvalidJob(format!(
                            "protected attribute index {j} out of range (table has {} attributes)",
                            table.n_attrs()
                        )));
                    }
                }
                let hierarchies = match hierarchies {
                    Some(hs) => {
                        if hs.len() != protected.len() {
                            return Err(PipelineError::InvalidJob(format!(
                                "{} hierarchies supplied for {} protected attributes",
                                hs.len(),
                                protected.len()
                            )));
                        }
                        hs.clone()
                    }
                    None if need_hierarchies => auto_hierarchies(table, protected)?,
                    None => Vec::new(),
                };
                Ok(SourceData {
                    kind: None,
                    table: table.clone(),
                    protected: protected.clone(),
                    hierarchies,
                })
            }
        }
    }
}

/// Build one hierarchy per selected attribute from the observed data:
/// merged runs for ordinal attributes, fold-into-mode for nominal ones.
fn auto_hierarchies(table: &Table, indices: &[usize]) -> Result<Vec<Hierarchy>> {
    indices
        .iter()
        .map(|&j| {
            let attr = table.schema().attr(j);
            match attr.kind() {
                AttrKind::Ordinal => Ok(Hierarchy::ordinal_auto(attr)),
                AttrKind::Nominal => {
                    let counts = stats::marginal_counts(table.column(j), attr.n_categories());
                    Ok(Hierarchy::nominal_from_counts(attr, &counts)?)
                }
            }
        })
        .collect()
}

/// Which optimizer drives a job's evolve stage.
///
/// Scalar and Pareto runs share every other part of the job shape — source,
/// population recipe, metrics, seed, audit — so the paper-vs-NSGA-II
/// ablation is a one-flag flip ([`ProtectionJobBuilder::nsga`]) on an
/// otherwise identical job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerMode {
    /// The paper's Algorithm 1: scalarized fitness (Eq. 1 mean / Eq. 2
    /// max), one winner per run.
    Scalar(EvoConfig),
    /// NSGA-II over Pareto dominance on (IL, DR) (the §4 "other fitness
    /// functions" extension): one run, the whole trade-off front.
    Nsga(NsgaConfig),
}

/// Which predefined masking sweep seeds the initial population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteKind {
    /// [`SuiteConfig::small`] — 12 protections, fast.
    Small,
    /// [`SuiteConfig::paper`] — the paper's per-dataset composition
    /// (86–110 protections); requires a generated-dataset source.
    Paper,
}

impl SuiteKind {
    /// The CLI spelling of the suite (`small` / `paper`).
    pub fn name(self) -> &'static str {
        match self {
            SuiteKind::Small => "small",
            SuiteKind::Paper => "paper",
        }
    }
}

/// How the initial population of protections is produced.
pub enum PopulationSpec {
    /// A predefined sweep, resolved against the source's dataset kind.
    Suite(SuiteKind),
    /// An explicit sweep configuration.
    Custom(SuiteConfig),
    /// A list of protection methods, each applied `copies` times with a
    /// shared seeded RNG stream.
    Methods(Vec<Box<dyn ProtectionMethod>>),
    /// Pre-masked files supplied by the caller.
    Named(Vec<(String, SubTable)>),
}

/// Optional privacy-audit stage configuration.
#[derive(Debug, Clone, Default)]
pub struct AuditSpec {
    /// Names of sensitive attributes (columns of the *full* table) to
    /// audit for l-diversity / t-closeness within the winner's classes.
    pub sensitive: Vec<String>,
}

/// A declarative protection job: the paper's whole workflow in one value.
///
/// Build with [`ProtectionJob::builder`]; execute with
/// [`ProtectionJob::run`] (one-shot) or [`Session::run`] (amortizing
/// evaluator preparation across jobs). A job is immutable and reusable:
/// running it twice produces identical reports.
pub struct ProtectionJob {
    pub(crate) source: DataSource,
    pub(crate) population: PopulationSpec,
    pub(crate) copies: usize,
    pub(crate) extra: Vec<(String, SubTable)>,
    pub(crate) metrics: MetricConfig,
    pub(crate) mode: OptimizerMode,
    pub(crate) objectives: ObjectiveSet,
    pub(crate) pram_epsilon: Option<f64>,
    pub(crate) iterations: usize,
    pub(crate) drop_best_fraction: f64,
    pub(crate) audit: Option<AuditSpec>,
    pub(crate) snapshot: Option<SnapshotCacheConfig>,
    pub(crate) seed: u64,
}

impl ProtectionJob {
    /// Start describing a job.
    pub fn builder() -> ProtectionJobBuilder {
        ProtectionJobBuilder::default()
    }

    /// Execute in a throwaway [`Session`].
    ///
    /// # Errors
    /// Any [`PipelineError`] raised by a stage.
    pub fn run(&self) -> Result<JobReport> {
        Session::new().run(self)
    }

    /// Execute in a throwaway [`Session`] with a progress observer.
    ///
    /// # Errors
    /// Any [`PipelineError`] raised by a stage.
    pub fn run_with<F: FnMut(&JobEvent)>(&self, observer: F) -> Result<JobReport> {
        Session::new().run_with(self, observer)
    }

    /// Resolve the data source into the concrete table the job runs
    /// against (generation happens here for generated sources; table
    /// sources get their hierarchies auto-built when not supplied).
    ///
    /// # Errors
    /// [`PipelineError::InvalidJob`] for inconsistent table sources.
    pub fn resolve_source(&self) -> Result<SourceData> {
        self.source.resolve(self.seed, true)
    }

    /// Resolution as the run engine performs it: hierarchy auto-building
    /// is skipped when the population recipe is pre-masked and therefore
    /// never needs them.
    pub(crate) fn resolve_for_run(&self) -> Result<SourceData> {
        let population_masks = !matches!(self.population, PopulationSpec::Named(_));
        self.source.resolve(self.seed, population_masks)
    }

    /// Materialize the initial population against a resolved source.
    ///
    /// The RNG streams match the free-form entry points
    /// ([`cdp_sdc::build_population`] for suites), so a job reproduces the
    /// exact population a hand-wired experiment with the same seed built.
    ///
    /// # Errors
    /// Method failures while masking, or [`PipelineError::InvalidJob`] for
    /// an empty population / a paper suite without a dataset kind.
    pub fn seed_population(&self, src: &SourceData) -> Result<Vec<(String, SubTable)>> {
        let original = src.original();
        let refs = src.hierarchy_refs();
        let from_suite = |cfg: &SuiteConfig| -> Result<Vec<(String, SubTable)>> {
            Ok(build_population_from(&original, &refs, cfg, self.seed)?
                .into_iter()
                .map(Into::into)
                .collect())
        };
        let mut pop = match &self.population {
            PopulationSpec::Suite(SuiteKind::Small) => from_suite(&SuiteConfig::small())?,
            PopulationSpec::Suite(SuiteKind::Paper) => {
                let kind = src.kind.ok_or_else(|| {
                    PipelineError::InvalidJob(
                        "the paper suite is defined per evaluation dataset; \
                         use a generated-dataset source or a custom suite"
                            .into(),
                    )
                })?;
                from_suite(&SuiteConfig::paper(kind))?
            }
            PopulationSpec::Custom(cfg) => from_suite(cfg)?,
            PopulationSpec::Methods(methods) => {
                let ctx = MethodContext { hierarchies: &refs };
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x000C_EA11);
                let mut out = Vec::with_capacity(methods.len() * self.copies);
                for method in methods {
                    for copy in 0..self.copies {
                        let data = method.protect(&original, &ctx, &mut rng)?;
                        let name = if self.copies == 1 {
                            method.name()
                        } else {
                            format!("{}#{copy}", method.name())
                        };
                        out.push((name, data));
                    }
                }
                out
            }
            PopulationSpec::Named(items) => items.clone(),
        };
        pop.extend(self.extra.iter().cloned());
        if let Some(eps) = self.pram_epsilon {
            // the ε member draws from its own seeded stream so that
            // adding (or removing) it never perturbs the recipe's or the
            // optimizer's RNG streams
            let ctx = MethodContext { hierarchies: &refs };
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x00E5_0CA1);
            let method = Pram::epsilon_calibrated(eps);
            let data = method.protect(&original, &ctx, &mut rng)?;
            pop.push((method.name(), data));
        }
        if pop.is_empty() {
            return Err(PipelineError::InvalidJob(
                "the population recipe produced no protections".into(),
            ));
        }
        Ok(pop)
    }

    /// Which optimizer drives the evolve stage, with its full
    /// configuration (the job seed and iteration budget already applied).
    pub fn optimizer(&self) -> OptimizerMode {
        self.mode
    }

    /// The scalar evolution configuration the job runs with. In NSGA-II
    /// mode this is the *scalar view* of the shared knobs (seed, budget,
    /// parallelism at their job values; everything else at its default) —
    /// what an otherwise-identical scalar job would use.
    pub fn evo_config(&self) -> EvoConfig {
        match self.mode {
            OptimizerMode::Scalar(cfg) => cfg,
            OptimizerMode::Nsga(cfg) => {
                let mut evo = EvoConfig {
                    seed: self.seed,
                    parallel_init: cfg.parallel_init,
                    islands: cfg.islands,
                    ..EvoConfig::default()
                };
                evo.stop.max_iterations = self.iterations.max(1);
                evo
            }
        }
    }

    /// The NSGA-II configuration, when the job runs in that mode.
    pub fn nsga_config(&self) -> Option<NsgaConfig> {
        match self.mode {
            OptimizerMode::Scalar(_) => None,
            OptimizerMode::Nsga(cfg) => Some(cfg),
        }
    }

    /// The objective vector the NSGA-II mode minimizes (the canonical
    /// `il, dr` pair unless [`ProtectionJobBuilder::objective`] appended
    /// extras).
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// The ε budget of the calibrated-PRAM population member, when
    /// [`ProtectionJobBuilder::epsilon_pram`] requested one.
    pub fn pram_epsilon(&self) -> Option<f64> {
        self.pram_epsilon
    }

    /// Metric configuration.
    pub fn metrics(&self) -> MetricConfig {
        self.metrics
    }

    /// The data source description.
    pub fn source(&self) -> &DataSource {
        &self.source
    }

    /// The population recipe.
    pub fn population(&self) -> &PopulationSpec {
        &self.population
    }

    /// Copies per method for [`PopulationSpec::Methods`].
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Extra protections appended on top of the population recipe.
    pub fn extras(&self) -> &[(String, SubTable)] {
        &self.extra
    }

    /// Iteration budget: scalar iterations, or NSGA-II generations. `0`
    /// means mask-and-score only (scalar mode; NSGA-II needs at least one
    /// generation).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Master seed (population masking and evolution).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fraction of best initial protections dropped before evolving.
    pub fn drop_fraction(&self) -> f64 {
        self.drop_best_fraction
    }

    /// The audit stage, when enabled.
    pub fn audit_spec(&self) -> Option<&AuditSpec> {
        self.audit.as_ref()
    }

    /// The persistent snapshot-cache tier the job attaches to its
    /// session, when configured.
    pub fn snapshot_cache(&self) -> Option<&SnapshotCacheConfig> {
        self.snapshot.as_ref()
    }
}

/// Fluent builder for [`ProtectionJob`]; see the module docs for the
/// one-chain quickstart.
pub struct ProtectionJobBuilder {
    source: Option<DataSource>,
    records: Option<usize>,
    generator_seed: Option<u64>,
    hierarchies: Option<Vec<Hierarchy>>,
    population: Option<PopulationSpec>,
    copies: usize,
    extra: Vec<(String, SubTable)>,
    metrics: MetricConfig,
    evo: EvoConfig,
    multi_objective: bool,
    objectives: Vec<String>,
    pram_epsilon: Option<f64>,
    incremental_crossover: bool,
    nsga_refresh: usize,
    offspring: Option<usize>,
    crossover_prob: Option<f64>,
    iterations: usize,
    stagnation: Option<usize>,
    drop_best_fraction: f64,
    audit: Option<AuditSpec>,
    snapshot: Option<SnapshotCacheConfig>,
    seed: u64,
}

impl Default for ProtectionJobBuilder {
    fn default() -> Self {
        ProtectionJobBuilder {
            source: None,
            records: None,
            generator_seed: None,
            hierarchies: None,
            population: None,
            copies: 2,
            extra: Vec::new(),
            metrics: MetricConfig::default(),
            evo: EvoConfig::default(),
            multi_objective: false,
            objectives: Vec::new(),
            pram_epsilon: None,
            incremental_crossover: EvoConfig::default().incremental_crossover,
            nsga_refresh: NsgaConfig::default().incremental_refresh,
            offspring: None,
            crossover_prob: None,
            iterations: 300,
            stagnation: None,
            drop_best_fraction: 0.0,
            audit: None,
            snapshot: None,
            seed: 42,
        }
    }
}

impl ProtectionJobBuilder {
    /// Source: generate one of the paper's evaluation datasets.
    pub fn dataset(mut self, kind: DatasetKind) -> Self {
        self.source = Some(DataSource::Generated {
            kind,
            records: None,
            seed: None,
        });
        self
    }

    /// Record-count override for a generated source.
    pub fn records(mut self, n: usize) -> Self {
        self.records = Some(n);
        self
    }

    /// Generator seed override (defaults to the job seed).
    pub fn generator_seed(mut self, seed: u64) -> Self {
        self.generator_seed = Some(seed);
        self
    }

    /// Source: an already-generated dataset.
    pub fn generated(mut self, ds: Dataset) -> Self {
        self.source = Some(DataSource::Dataset(ds));
        self
    }

    /// Source: a loaded table with the given protected attribute indices.
    pub fn table(mut self, table: Table, protected: Vec<usize>) -> Self {
        self.source = Some(DataSource::Table {
            table,
            protected,
            hierarchies: None,
        });
        self
    }

    /// Hierarchies for a table source (protected order); auto-built when
    /// omitted.
    pub fn hierarchies(mut self, hierarchies: Vec<Hierarchy>) -> Self {
        self.hierarchies = Some(hierarchies);
        self
    }

    /// Any [`DataSource`] value (escape hatch).
    pub fn source(mut self, source: DataSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Population: the small 12-protection sweep (default).
    pub fn suite_small(mut self) -> Self {
        self.population = Some(PopulationSpec::Suite(SuiteKind::Small));
        self
    }

    /// Population: the paper's per-dataset sweep.
    pub fn suite_paper(mut self) -> Self {
        self.population = Some(PopulationSpec::Suite(SuiteKind::Paper));
        self
    }

    /// Population: a predefined suite by tag.
    pub fn suite_kind(mut self, kind: SuiteKind) -> Self {
        self.population = Some(PopulationSpec::Suite(kind));
        self
    }

    /// Population: an explicit sweep configuration.
    pub fn suite(mut self, cfg: SuiteConfig) -> Self {
        self.population = Some(PopulationSpec::Custom(cfg));
        self
    }

    /// Population: explicit protection methods, `copies()` each.
    pub fn methods(mut self, methods: Vec<Box<dyn ProtectionMethod>>) -> Self {
        self.population = Some(PopulationSpec::Methods(methods));
        self
    }

    /// Masked copies per method for [`ProtectionJobBuilder::methods`]
    /// (default 2).
    pub fn copies(mut self, copies: usize) -> Self {
        self.copies = copies;
        self
    }

    /// Population: caller-supplied pre-masked files.
    pub fn named_population<I>(mut self, items: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<(String, SubTable)>,
    {
        self.population = Some(PopulationSpec::Named(
            items.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Append one extra protection on top of whatever the population
    /// recipe produces (custom methods, MDAV, hand-tuned files, …).
    pub fn add_protection(mut self, name: impl Into<String>, data: SubTable) -> Self {
        self.extra.push((name.into(), data));
        self
    }

    /// Measure parameters (interval fraction, RSRL window, EM iterations).
    pub fn metrics(mut self, cfg: MetricConfig) -> Self {
        self.metrics = cfg;
        self
    }

    /// DBRL/RSRL scan backend: the default [`LinkageMode::Blocked`]
    /// pattern-index scans, or the all-pairs [`LinkageMode::Pairs`]
    /// reference. Credits — and hence every published result — are
    /// identical either way; the CLI spells this `link=<pairs|blocked>`.
    pub fn linkage(mut self, mode: LinkageMode) -> Self {
        self.metrics.linkage = mode;
        self
    }

    /// Fitness aggregator (the paper's Eq. 1 `Mean` or Eq. 2 `Max`).
    /// Scalar mode only: NSGA-II selection works on Pareto dominance and
    /// never aggregates.
    pub fn aggregator(mut self, agg: ScoreAggregator) -> Self {
        self.evo.aggregator = agg;
        self
    }

    /// Optimize with NSGA-II (Pareto dominance over (IL, DR)) instead of
    /// the paper's scalarized fitness. [`ProtectionJobBuilder::iterations`]
    /// then counts *generations*; the report carries a
    /// [`super::Front`] instead of a scalar winner.
    pub fn nsga(mut self) -> Self {
        self.multi_objective = true;
        self
    }

    /// Append one more minimized objective (registry key `eps` or
    /// `util`) to the NSGA-II objective vector, after the canonical
    /// `il, dr` pair. NSGA-II mode only: Pareto dominance, crowding and
    /// the published front then work over the extended vector; the
    /// default pair keeps the run bit-identical to the hard-wired
    /// two-objective engine.
    pub fn objective(mut self, key: impl Into<String>) -> Self {
        self.objectives.push(key.into());
        self
    }

    /// Append an ε-calibrated invariant-PRAM protection
    /// ([`Pram::epsilon_calibrated`]) to the initial population, drawn
    /// from its own seeded stream (so the rest of the run's RNG streams
    /// are untouched). The budget is surfaced in the audit report's
    /// `epsilon` field when the audit stage is enabled.
    pub fn epsilon_pram(mut self, epsilon: f64) -> Self {
        self.pram_epsilon = Some(epsilon);
        self
    }

    /// NSGA-II offspring per generation (`0` = population size; the
    /// default). NSGA-II mode only.
    pub fn offspring(mut self, n: usize) -> Self {
        self.offspring = Some(n);
        self
    }

    /// NSGA-II probability that an offspring pair comes from crossover
    /// rather than mutation (the paper's operator coin, 0.5). NSGA-II mode
    /// only.
    pub fn crossover_prob(mut self, p: f64) -> Self {
        self.crossover_prob = Some(p);
        self
    }

    /// Any [`OptimizerMode`] value (escape hatch): adopts the mode and its
    /// whole configuration, resetting the other mode's knobs — so a reused
    /// builder ends up in the same state regardless of what was set before.
    /// The job seed still overrides the config's embedded seed at
    /// [`ProtectionJobBuilder::build`] time, keeping one master seed per
    /// job.
    pub fn optimizer(mut self, mode: OptimizerMode) -> Self {
        match mode {
            OptimizerMode::Scalar(cfg) => {
                self.multi_objective = false;
                self.offspring = None;
                self.crossover_prob = None;
                self.objectives.clear();
                self.iterations = cfg.stop.max_iterations;
                self.stagnation = cfg.stop.stagnation;
                self.incremental_crossover = cfg.incremental_crossover;
                self.evo = cfg;
            }
            OptimizerMode::Nsga(cfg) => {
                self.multi_objective = true;
                self.iterations = cfg.generations;
                self.offspring = Some(cfg.offspring);
                self.crossover_prob = Some(cfg.crossover_prob);
                self.incremental_crossover = cfg.incremental;
                self.nsga_refresh = cfg.incremental_refresh;
                self.evo = EvoConfig {
                    parallel_init: cfg.parallel_init,
                    islands: cfg.islands,
                    ..EvoConfig::default()
                };
                self.stagnation = None;
                self.drop_best_fraction = 0.0;
            }
        }
        self
    }

    /// Iteration budget; `0` skips evolution (mask-and-score only).
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Early-stop stagnation window.
    pub fn stagnation(mut self, window: usize) -> Self {
        self.stagnation = Some(window);
        self
    }

    /// Probability of a mutation generation (vs crossover).
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.evo.mutation_rate = rate;
        self
    }

    /// Fixed (paper) or adaptive operator schedule.
    pub fn operator_schedule(mut self, schedule: OperatorSchedule) -> Self {
        self.evo.operator_schedule = schedule;
        self
    }

    /// Selection weighting (Eq. 3 resolution).
    pub fn selection(mut self, selection: SelectionWeighting) -> Self {
        self.evo.selection = selection;
        self
    }

    /// Crossover replacement pairing.
    pub fn replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.evo.replacement = replacement;
        self
    }

    /// Leader-group fraction for crossover selection.
    pub fn leader_fraction(mut self, fraction: f64) -> Self {
        self.evo.leader_fraction = fraction;
        self
    }

    /// Toggle the incremental evaluator for mutation offspring (on by
    /// default; bit-identical to full assessment, so turning it off only
    /// changes wall time).
    pub fn incremental_mutation(mut self, on: bool) -> Self {
        self.evo.incremental_mutation = on;
        self
    }

    /// Toggle patch-based incremental evaluation of crossover offspring
    /// (on by default; bit-identical to full assessment). A shared knob:
    /// in scalar mode it maps to `EvoConfig::incremental_crossover`, in
    /// NSGA-II mode to `NsgaConfig::incremental` (which covers both
    /// operators there).
    pub fn incremental_crossover(mut self, on: bool) -> Self {
        self.incremental_crossover = on;
        self
    }

    /// Toggle parallel initial evaluation.
    pub fn parallel_init(mut self, on: bool) -> Self {
        self.evo.parallel_init = on;
        self
    }

    /// Number of islands for the island-model scheduler (default 1 =
    /// single-population legacy run, bit-identical streams). A shared
    /// knob: it applies to both the scalar and NSGA-II optimizers; see
    /// [`cdp_core::islands`] for the determinism contract.
    pub fn islands(mut self, count: usize) -> Self {
        self.evo.islands.count = count;
        self
    }

    /// Generations between migration epochs when `islands > 1`
    /// (default 10). Shared between the scalar and NSGA-II modes.
    pub fn migration_interval(mut self, interval: usize) -> Self {
        self.evo.islands.migration_interval = interval;
        self
    }

    /// Individuals exchanged per migration epoch (default 2; `0` runs
    /// fully isolated islands). Shared between the two modes.
    pub fn migration_size(mut self, size: usize) -> Self {
        self.evo.islands.migration_size = size;
        self
    }

    /// Drop the best fraction of the initial population before evolving
    /// (the §3.3 robustness experiment).
    pub fn drop_best_fraction(mut self, fraction: f64) -> Self {
        self.drop_best_fraction = fraction;
        self
    }

    /// Enable the privacy-audit stage (k-anonymity, prosecutor/journalist
    /// risk) on the winning protection.
    pub fn audit(mut self) -> Self {
        self.audit.get_or_insert_with(AuditSpec::default);
        self
    }

    /// Enable the audit stage and name sensitive attributes (full-table
    /// column names) to additionally check for l-diversity / t-closeness.
    pub fn audit_sensitive<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let spec = self.audit.get_or_insert_with(AuditSpec::default);
        spec.sensitive.extend(names.into_iter().map(Into::into));
        self
    }

    /// Attach a persistent snapshot cache: the session running this job
    /// serializes prepared evaluators under the configured directory and
    /// rehydrates them on later runs — even in a fresh process — instead
    /// of re-preparing (see [`SnapshotCacheConfig`] and
    /// [`super::SharedSession::set_snapshot_cache`]). The configuration
    /// is applied to the session at run time and stays in effect for its
    /// subsequent jobs.
    pub fn snapshot_cache(mut self, config: SnapshotCacheConfig) -> Self {
        self.snapshot = Some(config);
        self
    }

    /// Master seed: population masking, evolution, and the generator
    /// (unless overridden with [`ProtectionJobBuilder::generator_seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate and finish.
    ///
    /// # Errors
    /// [`PipelineError::InvalidJob`] when no source was given, `copies` is
    /// zero, the drop fraction is out of range, or the evolution knobs are
    /// invalid; [`PipelineError::Evolution`] wraps the latter.
    pub fn build(mut self) -> Result<ProtectionJob> {
        let mut source = self.source.take().ok_or_else(|| {
            PipelineError::InvalidJob(
                "a data source is required (dataset(), table() or source())".into(),
            )
        })?;
        if let DataSource::Generated { records, seed, .. } = &mut source {
            if self.records.is_some() {
                *records = self.records;
            }
            if self.generator_seed.is_some() {
                *seed = self.generator_seed;
            }
        }
        if let Some(hs) = self.hierarchies.take() {
            match &mut source {
                DataSource::Table { hierarchies, .. } => *hierarchies = Some(hs),
                _ => {
                    return Err(PipelineError::InvalidJob(
                        "hierarchies() only applies to a table source".into(),
                    ))
                }
            }
        }
        if self.copies == 0 {
            return Err(PipelineError::InvalidJob(
                "copies must be at least 1".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.drop_best_fraction) {
            return Err(PipelineError::InvalidJob(format!(
                "drop_best_fraction must lie in [0,1), got {}",
                self.drop_best_fraction
            )));
        }
        let mut objectives = ObjectiveSet::canonical();
        for key in &self.objectives {
            objectives
                .push_key(key)
                .map_err(|e| PipelineError::InvalidJob(e.to_string()))?;
        }
        if !objectives.is_canonical() && !self.multi_objective {
            return Err(PipelineError::InvalidJob(
                "objective() extends the NSGA-II objective vector; call nsga() first".into(),
            ));
        }
        if let Some(eps) = self.pram_epsilon {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(PipelineError::InvalidJob(format!(
                    "epsilon_pram() needs a positive finite budget, got {eps}"
                )));
            }
        }
        let mode = if self.multi_objective {
            // scalar-only knobs have no effect under Pareto selection;
            // reject them instead of silently dropping them
            // (incremental_crossover is shared — it maps onto
            // NsgaConfig::incremental — so it is not part of the check)
            let scalar_view = EvoConfig {
                parallel_init: self.evo.parallel_init,
                incremental_crossover: self.evo.incremental_crossover,
                islands: self.evo.islands,
                ..EvoConfig::default()
            };
            if self.evo != scalar_view {
                return Err(PipelineError::InvalidJob(
                    "scalar-only evolution knobs (aggregator(), mutation_rate(), \
                     operator_schedule(), selection(), replacement(), \
                     leader_fraction(), incremental_mutation()) do not apply \
                     to the NSGA-II mode"
                        .into(),
                ));
            }
            if self.stagnation.is_some() {
                return Err(PipelineError::InvalidJob(
                    "stagnation() applies to the scalar mode only".into(),
                ));
            }
            if self.drop_best_fraction != 0.0 {
                return Err(PipelineError::InvalidJob(
                    "drop_best_fraction() is the §3.3 scalar robustness knob; \
                     it does not apply to the NSGA-II mode"
                        .into(),
                ));
            }
            let defaults = NsgaConfig::default();
            let cfg = NsgaConfig {
                generations: self.iterations,
                offspring: self.offspring.unwrap_or(defaults.offspring),
                crossover_prob: self.crossover_prob.unwrap_or(defaults.crossover_prob),
                seed: self.seed,
                parallel_init: self.evo.parallel_init,
                incremental: self.incremental_crossover,
                incremental_refresh: self.nsga_refresh,
                islands: self.evo.islands,
            };
            cfg.validate()?;
            OptimizerMode::Nsga(cfg)
        } else {
            if self.offspring.is_some() {
                return Err(PipelineError::InvalidJob(
                    "offspring() applies to the NSGA-II mode; call nsga() first".into(),
                ));
            }
            if self.crossover_prob.is_some() {
                return Err(PipelineError::InvalidJob(
                    "crossover_prob() applies to the NSGA-II mode; call nsga() first".into(),
                ));
            }
            let mut evo = self.evo;
            evo.seed = self.seed;
            evo.stop.max_iterations = self.iterations.max(1);
            evo.stop.stagnation = self.stagnation;
            evo.incremental_crossover = self.incremental_crossover;
            evo.validate()?;
            OptimizerMode::Scalar(evo)
        };
        Ok(ProtectionJob {
            source,
            population: self
                .population
                .unwrap_or(PopulationSpec::Suite(SuiteKind::Small)),
            copies: self.copies,
            extra: self.extra,
            metrics: self.metrics,
            mode,
            objectives,
            pram_epsilon: self.pram_epsilon,
            iterations: self.iterations,
            drop_best_fraction: self.drop_best_fraction,
            audit: self.audit,
            snapshot: self.snapshot,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_a_source() {
        let err = ProtectionJob::builder().build().unwrap_err();
        assert!(err.to_string().contains("data source"));
    }

    #[test]
    fn builder_rejects_bad_knobs() {
        for (what, result) in [
            (
                "copies",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .copies(0)
                    .build()
                    .map(|_| ()),
            ),
            (
                "drop",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .drop_best_fraction(1.0)
                    .build()
                    .map(|_| ()),
            ),
            (
                "mutation rate",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .mutation_rate(1.5)
                    .build()
                    .map(|_| ()),
            ),
            (
                "hierarchies",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .hierarchies(Vec::new())
                    .build()
                    .map(|_| ()),
            ),
        ] {
            assert!(result.is_err(), "{what} should be rejected");
        }
    }

    #[test]
    fn nsga_mode_builds_its_config_from_the_shared_knobs() {
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .nsga()
            .iterations(40)
            .offspring(6)
            .crossover_prob(0.8)
            .parallel_init(false)
            .seed(11)
            .build()
            .unwrap();
        let cfg = job.nsga_config().expect("nsga mode");
        assert_eq!(cfg.generations, 40);
        assert_eq!(cfg.offspring, 6);
        assert_eq!(cfg.crossover_prob, 0.8);
        assert_eq!(cfg.seed, 11);
        assert!(!cfg.parallel_init);
        assert!(matches!(job.optimizer(), OptimizerMode::Nsga(_)));
        // the scalar view keeps the shared knobs
        assert_eq!(job.evo_config().seed, 11);
        assert!(!job.evo_config().parallel_init);
    }

    #[test]
    fn optimizer_escape_hatch_round_trips_both_modes() {
        let nsga = NsgaConfig {
            generations: 7,
            offspring: 3,
            crossover_prob: 0.25,
            seed: 2,
            parallel_init: true,
            incremental: true,
            incremental_refresh: 5,
            islands: cdp_core::IslandConfig::default(),
        };
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .optimizer(OptimizerMode::Nsga(nsga))
            .seed(9)
            .build()
            .unwrap();
        // job seed wins over the embedded one; everything else is adopted
        assert_eq!(job.nsga_config(), Some(NsgaConfig { seed: 9, ..nsga }));

        let scalar = EvoConfig {
            mutation_rate: 0.7,
            ..EvoConfig::default()
        };
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .optimizer(OptimizerMode::Scalar(scalar))
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(job.evo_config().mutation_rate, 0.7);
        assert_eq!(job.evo_config().seed, 9);

        // switching modes resets the other mode's knobs: a reused builder
        // template cannot poison the new mode
        use cdp_metrics::ScoreAggregator;
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .aggregator(ScoreAggregator::Mean)
            .drop_best_fraction(0.1)
            .optimizer(OptimizerMode::Nsga(nsga))
            .seed(9)
            .build()
            .expect("nsga escape hatch clears scalar-only knobs");
        assert_eq!(job.nsga_config(), Some(NsgaConfig { seed: 9, ..nsga }));
    }

    #[test]
    fn nsga_mode_rejects_scalar_only_knobs() {
        use cdp_metrics::ScoreAggregator;
        for (what, result) in [
            (
                "aggregator",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .nsga()
                    .aggregator(ScoreAggregator::Mean)
                    .build()
                    .map(|_| ()),
            ),
            (
                "drop_best_fraction",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .nsga()
                    .drop_best_fraction(0.05)
                    .build()
                    .map(|_| ()),
            ),
            (
                "stagnation",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .nsga()
                    .stagnation(10)
                    .build()
                    .map(|_| ()),
            ),
            (
                "zero generations",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .nsga()
                    .iterations(0)
                    .build()
                    .map(|_| ()),
            ),
        ] {
            assert!(result.is_err(), "{what} must be rejected under nsga");
        }
    }

    #[test]
    fn scalar_mode_rejects_nsga_only_knobs() {
        for (what, result) in [
            (
                "offspring",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .offspring(4)
                    .build()
                    .map(|_| ()),
            ),
            (
                "crossover_prob",
                ProtectionJob::builder()
                    .dataset(DatasetKind::Adult)
                    .crossover_prob(0.9)
                    .build()
                    .map(|_| ()),
            ),
        ] {
            let err = result.unwrap_err();
            assert!(err.to_string().contains("NSGA-II mode"), "{what}: {err}");
        }
    }

    #[test]
    fn incremental_crossover_is_a_shared_knob() {
        // scalar mode: maps onto EvoConfig::incremental_crossover
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .incremental_crossover(true)
            .build()
            .unwrap();
        assert!(job.evo_config().incremental_crossover);

        // nsga mode: maps onto NsgaConfig::incremental instead of being
        // rejected as a scalar-only knob
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .nsga()
            .iterations(5)
            .incremental_crossover(true)
            .build()
            .unwrap();
        assert!(job.nsga_config().expect("nsga mode").incremental);
    }

    #[test]
    fn island_knobs_are_shared_between_both_modes() {
        // scalar mode: knobs land on EvoConfig::islands
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .islands(4)
            .migration_interval(25)
            .migration_size(3)
            .build()
            .unwrap();
        let islands = job.evo_config().islands;
        assert_eq!(islands.count, 4);
        assert_eq!(islands.migration_interval, 25);
        assert_eq!(islands.migration_size, 3);

        // nsga mode: the same knobs land on NsgaConfig::islands instead of
        // being rejected as scalar-only
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .nsga()
            .iterations(5)
            .islands(2)
            .migration_interval(3)
            .build()
            .unwrap();
        let cfg = job.nsga_config().expect("nsga mode");
        assert_eq!(cfg.islands.count, 2);
        assert_eq!(cfg.islands.migration_interval, 3);
        // and the scalar view reflects them too
        assert_eq!(job.evo_config().islands.count, 2);

        // invalid island configs are rejected at build time in both modes
        assert!(ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .islands(0)
            .build()
            .is_err());
        assert!(ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .nsga()
            .iterations(5)
            .migration_interval(0)
            .build()
            .is_err());
    }

    #[test]
    fn generated_source_defaults_to_job_seed() {
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(50)
            .seed(9)
            .build()
            .unwrap();
        let a = job.resolve_source().unwrap();
        let direct = DatasetKind::German.generate(&GeneratorConfig::seeded(9).with_records(50));
        assert_eq!(a.table.column(0), direct.table.column(0));
        assert_eq!(a.kind, Some(DatasetKind::German));
    }

    #[test]
    fn suite_population_matches_free_form_entry_point() {
        let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(3).with_records(60));
        let direct: Vec<(String, SubTable)> =
            cdp_sdc::build_population(&ds, &SuiteConfig::small(), 3)
                .unwrap()
                .into_iter()
                .map(Into::into)
                .collect();
        let job = ProtectionJob::builder()
            .generated(ds)
            .suite_small()
            .seed(3)
            .build()
            .unwrap();
        let src = job.resolve_source().unwrap();
        let pop = job.seed_population(&src).unwrap();
        assert_eq!(pop.len(), direct.len());
        for ((an, ad), (bn, bd)) in pop.iter().zip(direct.iter()) {
            assert_eq!(an, bn);
            assert_eq!(ad, bd);
        }
    }

    #[test]
    fn paper_suite_requires_dataset_kind() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(40));
        let job = ProtectionJob::builder()
            .table(ds.table.clone(), ds.protected.clone())
            .suite_paper()
            .build()
            .unwrap();
        let src = job.resolve_source().unwrap();
        let err = job.seed_population(&src).unwrap_err();
        assert!(err.to_string().contains("paper suite"));
    }

    #[test]
    fn table_source_auto_builds_hierarchies() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(2).with_records(60));
        let job = ProtectionJob::builder()
            .table(ds.table.clone(), ds.protected.clone())
            .build()
            .unwrap();
        let src = job.resolve_source().unwrap();
        assert_eq!(src.hierarchies.len(), ds.protected.len());
        assert!(src.kind.is_none());
    }

    #[test]
    fn objective_extension_is_nsga_only_and_validated() {
        // extras build under nsga()
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .nsga()
            .iterations(5)
            .objective("eps")
            .build()
            .unwrap();
        assert_eq!(job.objectives().keys(), ["il", "dr", "eps"]);
        // default stays canonical
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .nsga()
            .iterations(5)
            .build()
            .unwrap();
        assert!(job.objectives().is_canonical());
        // scalar mode rejects extras
        let err = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .objective("eps")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nsga"), "{err}");
        // unknown keys and duplicates are named
        for bad in ["warp", "il"] {
            let err = ProtectionJob::builder()
                .dataset(DatasetKind::German)
                .nsga()
                .iterations(5)
                .objective(bad)
                .build()
                .unwrap_err();
            assert!(err.to_string().contains("objective"), "{bad}: {err}");
        }
    }

    #[test]
    fn epsilon_pram_member_joins_the_population() {
        let base = || {
            ProtectionJob::builder()
                .dataset(DatasetKind::German)
                .records(40)
                .seed(7)
        };
        let plain = base().build().unwrap();
        let with_eps = base().epsilon_pram(1.0).build().unwrap();
        assert_eq!(with_eps.pram_epsilon(), Some(1.0));
        let src = plain.resolve_source().unwrap();
        let pop_plain = plain.seed_population(&src).unwrap();
        let pop_eps = with_eps.seed_population(&src).unwrap();
        // exactly one extra member, appended last, and the recipe's
        // members are untouched (dedicated RNG stream)
        assert_eq!(pop_eps.len(), pop_plain.len() + 1);
        for ((an, ad), (bn, bd)) in pop_plain.iter().zip(&pop_eps) {
            assert_eq!(an, bn);
            assert_eq!(ad, bd);
        }
        assert_eq!(pop_eps.last().unwrap().0, "pram(eps=1.00,inv)");
        // invalid budgets are rejected at build time
        assert!(base().epsilon_pram(0.0).build().is_err());
        assert!(base().epsilon_pram(f64::NAN).build().is_err());
    }

    #[test]
    fn table_source_validates_indices() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(30));
        let job = ProtectionJob::builder()
            .table(ds.table.clone(), vec![999])
            .build()
            .unwrap();
        assert!(job.resolve_source().is_err());
        let job = ProtectionJob::builder()
            .table(ds.table, vec![])
            .build()
            .unwrap();
        assert!(job.resolve_source().is_err());
    }
}
