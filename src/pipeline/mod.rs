//! The unified job API: one declarative builder for the paper's whole
//! workflow.
//!
//! The workspace crates expose the pipeline's *pieces* — datasets
//! ([`cdp_dataset`]), SDC masking suites ([`cdp_sdc`]), IL/DR measures
//! ([`cdp_metrics`]), the evolutionary optimizer ([`cdp_core`]) and privacy
//! audits ([`cdp_privacy`]) — but the paper's workflow is one fixed shape:
//! *mask the original with a suite of protections, score them, evolve the
//! population, audit and publish the winner*. This module packages that
//! shape behind three types:
//!
//! * [`ProtectionJob`] — a declarative description of one run: data source,
//!   population recipe, metric configuration, optimizer mode
//!   ([`OptimizerMode`]: the paper's scalar algorithm or NSGA-II over
//!   Pareto dominance), evolution knobs, stop conditions and an optional
//!   privacy audit. Built with [`ProtectionJob::builder`], executed with
//!   [`ProtectionJob::run`].
//! * [`Session`] — an execution context that caches the prepared
//!   original-side statistics ([`cdp_metrics::PreparedOriginal`] inside an
//!   [`cdp_metrics::Evaluator`]), so repeated jobs against the same
//!   original skip re-preparation — scalar and NSGA-II jobs share the one
//!   cache. One session can serve many jobs — the CLI, the bench harness
//!   and the `cdp serve` protection server all drive this cache;
//!   [`SharedSession`] is its thread-safe form (cloneable, `&self`
//!   methods, exactly-once preparation under concurrency) and
//!   [`SessionStats`] its observability counters.
//! * [`JobReport`] — everything a run produces: the mode-aware
//!   [`JobOutcome`] (scalar [`cdp_core::EvolutionOutcome`] telemetry, or a
//!   Pareto [`Front`] with hypervolume trajectory), the winning protection
//!   with its full IL/DR breakdown (the front's knee point in NSGA-II
//!   mode), and the optional [`cdp_privacy::PrivacyReport`].
//!
//! Progress streams through [`JobEvent`] observers ([`Session::run_with`]),
//! giving interactive consumers one channel for preparation, population,
//! per-generation and front-progress telemetry.
//!
//! ```
//! use cdp::prelude::*;
//!
//! let report = ProtectionJob::builder()
//!     .dataset(DatasetKind::Adult)
//!     .records(100)
//!     .suite_small()
//!     .aggregator(ScoreAggregator::Max)
//!     .iterations(30)
//!     .seed(7)
//!     .audit()
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(report.best.assessment.il() >= 0.0);
//! assert!(report.privacy.is_some());
//! ```

mod job;
mod report;
mod session;
mod shared;
mod stages;

use std::fmt;

pub use job::{
    AuditSpec, DataSource, OptimizerMode, PopulationSpec, ProtectionJob, ProtectionJobBuilder,
    SourceData, SuiteKind,
};
pub use report::{BestProtection, Front, JobOutcome, JobReport};
pub use session::Session;
pub use shared::{CacheEntryStats, SessionStats, SharedSession, SnapshotCacheConfig};
pub use stages::JobEvent;

/// Everything that can go wrong while describing or executing a job.
#[derive(Debug)]
pub enum PipelineError {
    /// The job description itself is inconsistent (missing source, empty
    /// population, unresolvable attribute names, …).
    InvalidJob(String),
    /// Dataset layer failure (bad indices, I/O, schema mismatch).
    Dataset(cdp_dataset::DatasetError),
    /// A protection method failed while seeding the population.
    Sdc(cdp_sdc::SdcError),
    /// Metric configuration or evaluation failure.
    Metric(cdp_metrics::MetricError),
    /// The evolutionary run rejected its configuration or population.
    Evolution(cdp_core::EvoError),
    /// The privacy audit failed.
    Privacy(cdp_privacy::PrivacyError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            PipelineError::Dataset(e) => write!(f, "dataset: {e}"),
            PipelineError::Sdc(e) => write!(f, "protection: {e}"),
            PipelineError::Metric(e) => write!(f, "metrics: {e}"),
            PipelineError::Evolution(e) => write!(f, "evolution: {e}"),
            PipelineError::Privacy(e) => write!(f, "privacy: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::InvalidJob(_) => None,
            PipelineError::Dataset(e) => Some(e),
            PipelineError::Sdc(e) => Some(e),
            PipelineError::Metric(e) => Some(e),
            PipelineError::Evolution(e) => Some(e),
            PipelineError::Privacy(e) => Some(e),
        }
    }
}

impl From<cdp_dataset::DatasetError> for PipelineError {
    fn from(e: cdp_dataset::DatasetError) -> Self {
        PipelineError::Dataset(e)
    }
}

impl From<cdp_sdc::SdcError> for PipelineError {
    fn from(e: cdp_sdc::SdcError) -> Self {
        PipelineError::Sdc(e)
    }
}

impl From<cdp_metrics::MetricError> for PipelineError {
    fn from(e: cdp_metrics::MetricError) -> Self {
        PipelineError::Metric(e)
    }
}

impl From<cdp_core::EvoError> for PipelineError {
    fn from(e: cdp_core::EvoError) -> Self {
        PipelineError::Evolution(e)
    }
}

impl From<cdp_privacy::PrivacyError> for PipelineError {
    fn from(e: cdp_privacy::PrivacyError) -> Self {
        PipelineError::Privacy(e)
    }
}

/// Pipeline result alias.
pub type Result<T> = std::result::Result<T, PipelineError>;
