//! The typed result of a job: mode-aware outcome, winner breakdown, audit.

use std::io::{self, Write};

use cdp_core::{EvalCounts, EvolutionOutcome, NsgaOutcome, ScatterPoint, ScoreSummary};
use cdp_dataset::generators::DatasetKind;
use cdp_dataset::{SubTable, Table};
use cdp_metrics::Assessment;
use cdp_privacy::PrivacyReport;

use super::Result;

/// The winning protection of a run with its full IL/DR breakdown.
#[derive(Debug, Clone)]
pub struct BestProtection {
    /// Provenance label (method name, possibly evolved far from it).
    pub name: String,
    /// The masked protected columns.
    pub data: SubTable,
    /// The seven-measure assessment of the winner.
    pub assessment: Assessment,
}

/// A Pareto front over (IL, DR): what an NSGA-II job produces instead of a
/// single scalar winner.
///
/// Every front member carries its protected file, so any trade-off point —
/// not just the [`Front::knee`] — can be published via
/// [`JobReport::publish_member`].
#[derive(Debug, Clone)]
pub struct Front {
    /// The final population's non-dominated members with their protected
    /// files and full assessments, IL-ascending.
    pub members: Vec<BestProtection>,
    /// The members' (IL, DR) points, aligned with [`Front::members`].
    pub points: Vec<ScatterPoint>,
    /// Non-dominated front of the *initial* population.
    pub initial: Vec<ScatterPoint>,
    /// All-time front across every individual ever evaluated (monotone in
    /// hypervolume by construction).
    pub archive: Vec<ScatterPoint>,
    /// Hypervolume trajectory: the population front's hypervolume after
    /// each generation, index 0 = initial population.
    pub hypervolume: Vec<f64>,
    /// Total fitness evaluations performed (initial population included).
    pub evaluations: usize,
    /// The same evaluations split into full assessments and patch-based
    /// re-assessments (`NsgaConfig::incremental` moves offspring from the
    /// first bucket to the second).
    pub eval_counts: EvalCounts,
    /// The grammar keys of the objectives the run minimized, in vector
    /// order (always leads with `il, dr`).
    pub objective_keys: Vec<&'static str>,
}

impl Front {
    pub(crate) fn from_outcome(outcome: NsgaOutcome) -> Front {
        let members = outcome
            .front_members
            .into_iter()
            .map(|ind| BestProtection {
                assessment: *ind.assessment(),
                name: ind.name,
                data: ind.data,
            })
            .collect();
        Front {
            members,
            points: outcome.front,
            initial: outcome.initial_front,
            archive: outcome.archive_front,
            hypervolume: outcome.hypervolume_series,
            evaluations: outcome.evaluations,
            eval_counts: outcome.eval_counts,
            objective_keys: outcome.objectives.keys(),
        }
    }

    /// Generations actually executed (the trajectory minus its initial
    /// snapshot).
    pub fn generations_run(&self) -> usize {
        self.hypervolume.len().saturating_sub(1)
    }

    /// Hypervolume of the initial population's front.
    pub fn initial_hypervolume(&self) -> f64 {
        self.hypervolume.first().copied().unwrap_or(0.0)
    }

    /// Hypervolume of the final population's front.
    pub fn final_hypervolume(&self) -> f64 {
        self.hypervolume.last().copied().unwrap_or(0.0)
    }

    /// Index of the knee point: the member closest (in objective space
    /// normalized to the front's extent) to the ideal point — the
    /// balanced trade-off a scalar consumer publishes by default. Works
    /// over the full objective vector (2 or more dimensions); an axis the
    /// whole front shares one value on (zero span) contributes nothing to
    /// any distance instead of poisoning the normalization with 0/0.
    ///
    /// # Panics
    /// Panics on an empty front (pipeline-built fronts never are:
    /// populations are validated non-empty).
    pub fn knee_index(&self) -> usize {
        assert!(!self.points.is_empty(), "a front has at least one member");
        let dims = self.points[0].objectives.len();
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        for p in &self.points {
            for d in 0..dims {
                lo[d] = lo[d].min(p.objectives[d]);
                hi[d] = hi[d].max(p.objectives[d]);
            }
        }
        let norm = |v: f64, lo: f64, span: f64| if span > 0.0 { (v - lo) / span } else { 0.0 };
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let dist: f64 = (0..dims)
                    .map(|d| {
                        let x = norm(p.objectives[d], lo[d], hi[d] - lo[d]);
                        x * x
                    })
                    .sum();
                (i, dist)
            })
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite distances"))
            .map(|(i, _)| i)
            .expect("front is non-empty")
    }

    /// The knee-point member (see [`Front::knee_index`]).
    ///
    /// # Panics
    /// Panics when [`Front::members`] is not aligned with
    /// [`Front::points`] (hand-built fronts only; pipeline-built fronts
    /// always align).
    pub fn knee(&self) -> &BestProtection {
        assert_eq!(
            self.members.len(),
            self.points.len(),
            "Front::members must align with Front::points"
        );
        &self.members[self.knee_index()]
    }

    /// Write the `front.csv` artifact: initial, final and archive fronts
    /// as `phase,name,il,dr,score` rows. Runs with extended objective
    /// sets append one column per extra objective (`…,score,eps`);
    /// canonical two-objective runs emit the exact historical format,
    /// byte for byte.
    ///
    /// # Errors
    /// Propagates writer failures.
    pub fn write_front_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        let extra_keys = if self.objective_keys.len() > 2 {
            &self.objective_keys[2..]
        } else {
            &[]
        };
        write!(out, "phase,name,il,dr,score")?;
        for key in extra_keys {
            write!(out, ",{key}")?;
        }
        writeln!(out)?;
        for (phase, points) in [
            ("initial", &self.initial),
            ("final", &self.points),
            ("archive", &self.archive),
        ] {
            for p in points {
                write!(
                    out,
                    "{phase},{},{:.4},{:.4},{:.4}",
                    p.name, p.il, p.dr, p.score
                )?;
                for d in 2..2 + extra_keys.len() {
                    if d < p.objectives.len() {
                        write!(out, ",{:.4}", p.objectives[d])?;
                    } else {
                        // archive points offered outside the optimizer may
                        // carry the bare pair; pad so rows stay rectangular
                        write!(out, ",")?;
                    }
                }
                writeln!(out)?;
            }
        }
        Ok(())
    }

    /// Write the `hypervolume.csv` artifact: the
    /// `generation,hypervolume` trajectory (generation 0 = initial
    /// population).
    ///
    /// # Errors
    /// Propagates writer failures.
    pub fn write_hypervolume_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "generation,hypervolume")?;
        for (generation, value) in self.hypervolume.iter().enumerate() {
            writeln!(out, "{generation},{value:.4}")?;
        }
        Ok(())
    }
}

/// What the optimizer stage of a job produced, by mode.
#[derive(Debug)]
pub enum JobOutcome {
    /// Iteration budget 0: the population was masked and scored, nothing
    /// evolved.
    Scored,
    /// The paper's scalar evolution ran; full telemetry attached.
    Scalar(EvolutionOutcome),
    /// NSGA-II ran; the result is a Pareto front.
    Pareto(Front),
}

impl JobOutcome {
    /// The scalar evolution telemetry, when Algorithm 1 ran.
    pub fn scalar(&self) -> Option<&EvolutionOutcome> {
        match self {
            JobOutcome::Scalar(outcome) => Some(outcome),
            _ => None,
        }
    }

    /// Consume into the scalar telemetry, when Algorithm 1 ran.
    pub fn into_scalar(self) -> Option<EvolutionOutcome> {
        match self {
            JobOutcome::Scalar(outcome) => Some(outcome),
            _ => None,
        }
    }

    /// The Pareto front, when NSGA-II ran.
    pub fn front(&self) -> Option<&Front> {
        match self {
            JobOutcome::Pareto(front) => Some(front),
            _ => None,
        }
    }

    /// Consume into the Pareto front, when NSGA-II ran.
    pub fn into_front(self) -> Option<Front> {
        match self {
            JobOutcome::Pareto(front) => Some(front),
            _ => None,
        }
    }

    /// Whether the job only masked and scored (iteration budget 0).
    pub fn is_scored_only(&self) -> bool {
        matches!(self, JobOutcome::Scored)
    }
}

/// Everything one [`super::ProtectionJob`] produced.
#[derive(Debug)]
pub struct JobReport {
    /// The evaluation dataset kind, when the source was generated.
    pub kind: Option<DatasetKind>,
    /// The full original table the job ran against.
    pub table: Table,
    /// Indices of the protected attributes within [`JobReport::table`].
    pub protected: Vec<usize>,
    /// Number of protections that entered the run.
    pub population_size: usize,
    /// Whether the session served a cached evaluator preparation.
    pub evaluator_reused: bool,
    /// The optimizer's result: scalar telemetry, a Pareto [`Front`], or
    /// [`JobOutcome::Scored`] for mask-and-score jobs.
    pub outcome: JobOutcome,
    /// Final (IL, DR) snapshot of the population — the evolved population
    /// (the front, in NSGA-II mode), or the assessed initial protections
    /// for mask-and-score jobs.
    pub points: Vec<ScatterPoint>,
    /// The winning protection: the scalar winner, or the front's knee
    /// point in NSGA-II mode.
    pub best: BestProtection,
    /// Privacy audit of the winner, when the job enabled it.
    pub privacy: Option<PrivacyReport>,
}

impl JobReport {
    /// The §3.1/§3.2 summary row, when the job ran the scalar optimizer.
    pub fn summary(&self) -> Option<ScoreSummary> {
        self.outcome.scalar().map(EvolutionOutcome::summary)
    }

    /// The scalar evolution telemetry, when Algorithm 1 ran.
    pub fn scalar_outcome(&self) -> Option<&EvolutionOutcome> {
        self.outcome.scalar()
    }

    /// The Pareto front, when the job ran NSGA-II.
    pub fn front(&self) -> Option<&Front> {
        self.outcome.front()
    }

    /// The original protected columns (reference side of every measure).
    pub fn original(&self) -> SubTable {
        self.table
            .subtable(&self.protected)
            .expect("protected indices validated at resolve time")
    }

    /// The publishable file: the full original table with the winning
    /// protected columns substituted. In NSGA-II mode the winner is the
    /// front's knee point ([`Front::knee`]); [`JobReport::publish_member`]
    /// publishes any other trade-off point.
    ///
    /// # Errors
    /// Shape mismatch (cannot happen for reports built by the pipeline).
    pub fn published_best(&self) -> Result<Table> {
        self.publish_member(&self.best)
    }

    /// Publish an arbitrary protection (e.g. a non-knee [`Front`] member)
    /// into the full original table.
    ///
    /// # Errors
    /// Shape mismatch for protections not built against this original.
    pub fn publish_member(&self, member: &BestProtection) -> Result<Table> {
        Ok(self.table.with_subtable(&member.data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use cdp_core::ObjectiveVector;

    fn pt(name: &str, il: f64, dr: f64) -> ScatterPoint {
        ScatterPoint::from_pair(name.into(), il, dr, il.max(dr))
    }

    fn pt3(name: &str, il: f64, dr: f64, eps: f64) -> ScatterPoint {
        let mut p = pt(name, il, dr);
        p.objectives = ObjectiveVector::from_slice(&[il, dr, eps]);
        p
    }

    fn front_of(points: Vec<ScatterPoint>) -> Front {
        Front {
            members: Vec::new(),
            points,
            initial: Vec::new(),
            archive: Vec::new(),
            hypervolume: vec![0.0, 1.0],
            evaluations: 0,
            eval_counts: EvalCounts::default(),
            objective_keys: vec!["il", "dr"],
        }
    }

    #[test]
    fn knee_picks_the_balanced_point() {
        // corners (0,100) and (100,0) vs a near-ideal middle point
        let front = front_of(vec![
            pt("low-il", 0.0, 100.0),
            pt("knee", 20.0, 20.0),
            pt("low-dr", 100.0, 0.0),
        ]);
        assert_eq!(front.knee_index(), 1);
    }

    #[test]
    fn knee_of_single_point_front_is_that_point() {
        let front = front_of(vec![pt("only", 10.0, 10.0)]);
        assert_eq!(front.knee_index(), 0);
    }

    #[test]
    fn knee_handles_degenerate_spans() {
        // all members share one IL: the DR axis decides
        let front = front_of(vec![pt("a", 5.0, 30.0), pt("b", 5.0, 10.0)]);
        assert_eq!(front.knee_index(), 1);
        // every axis flat: distances all zero, the first member wins
        let front = front_of(vec![pt("a", 5.0, 5.0), pt("b", 5.0, 5.0)]);
        assert_eq!(front.knee_index(), 0);
    }

    #[test]
    fn knee_works_over_three_objectives() {
        let mut front = front_of(vec![
            pt3("corner-a", 0.0, 100.0, 50.0),
            pt3("balanced", 15.0, 15.0, 10.0),
            pt3("corner-b", 100.0, 0.0, 50.0),
        ]);
        front.objective_keys = vec!["il", "dr", "eps"];
        assert_eq!(front.knee_index(), 1);
        // a flat third axis must not disturb the 2-D decision
        let mut front = front_of(vec![
            pt3("low-il", 0.0, 100.0, 7.0),
            pt3("knee", 20.0, 20.0, 7.0),
            pt3("low-dr", 100.0, 0.0, 7.0),
        ]);
        front.objective_keys = vec!["il", "dr", "eps"];
        assert_eq!(front.knee_index(), 1);
    }

    #[test]
    fn csv_writers_emit_headers_and_rows() {
        let mut front = front_of(vec![pt("f", 1.0, 2.0)]);
        front.initial = vec![pt("i", 3.0, 4.0)];
        front.archive = vec![pt("a", 1.0, 2.0)];
        let mut buf = Vec::new();
        front.write_front_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("phase,name,il,dr,score\n"));
        assert!(text.contains("initial,i,3.0000,4.0000,"));
        assert!(text.contains("final,f,1.0000,2.0000,"));
        assert!(text.contains("archive,a,"));

        let mut buf = Vec::new();
        front.write_hypervolume_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "generation,hypervolume\n0,0.0000\n1,1.0000\n");
    }

    #[test]
    fn extended_runs_append_objective_columns() {
        let mut front = front_of(vec![pt3("f", 1.0, 2.0, 3.5)]);
        front.objective_keys = vec!["il", "dr", "eps"];
        // an archive point carrying only the pair pads its extra column
        front.archive = vec![pt("a", 1.0, 2.0)];
        let mut buf = Vec::new();
        front.write_front_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("phase,name,il,dr,score,eps\n"), "{text}");
        assert!(text.contains("final,f,1.0000,2.0000,2.0000,3.5000\n"));
        assert!(text.contains("archive,a,1.0000,2.0000,2.0000,\n"));
    }

    #[test]
    fn outcome_accessors_discriminate_modes() {
        let scored = JobOutcome::Scored;
        assert!(scored.is_scored_only());
        assert!(scored.scalar().is_none());
        assert!(scored.front().is_none());
        let pareto = JobOutcome::Pareto(front_of(vec![pt("x", 1.0, 1.0)]));
        assert!(pareto.front().is_some());
        assert!(pareto.scalar().is_none());
        assert!(pareto.into_front().is_some());
    }
}
