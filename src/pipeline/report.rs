//! The typed result of a job: evolution outcome, winner breakdown, audit.

use cdp_core::{EvolutionOutcome, ScatterPoint, ScoreSummary};
use cdp_dataset::generators::DatasetKind;
use cdp_dataset::{SubTable, Table};
use cdp_metrics::Assessment;
use cdp_privacy::PrivacyReport;

use super::Result;

/// The winning protection of a run with its full IL/DR breakdown.
#[derive(Debug, Clone)]
pub struct BestProtection {
    /// Provenance label (method name, possibly evolved far from it).
    pub name: String,
    /// The masked protected columns.
    pub data: SubTable,
    /// The seven-measure assessment of the winner.
    pub assessment: Assessment,
}

/// Everything one [`super::ProtectionJob`] produced.
#[derive(Debug)]
pub struct JobReport {
    /// The evaluation dataset kind, when the source was generated.
    pub kind: Option<DatasetKind>,
    /// The full original table the job ran against.
    pub table: Table,
    /// Indices of the protected attributes within [`JobReport::table`].
    pub protected: Vec<usize>,
    /// Number of protections that entered the run.
    pub population_size: usize,
    /// Whether the session served a cached evaluator preparation.
    pub evaluator_reused: bool,
    /// The evolutionary run's full telemetry; `None` for mask-and-score
    /// jobs (iteration budget 0).
    pub outcome: Option<EvolutionOutcome>,
    /// Final (IL, DR) snapshot of the population — the evolved population,
    /// or the assessed initial protections for mask-and-score jobs.
    pub points: Vec<ScatterPoint>,
    /// The winning protection.
    pub best: BestProtection,
    /// Privacy audit of the winner, when the job enabled it.
    pub privacy: Option<PrivacyReport>,
}

impl JobReport {
    /// The §3.1/§3.2 summary row, when the job evolved.
    pub fn summary(&self) -> Option<ScoreSummary> {
        self.outcome.as_ref().map(EvolutionOutcome::summary)
    }

    /// The original protected columns (reference side of every measure).
    pub fn original(&self) -> SubTable {
        self.table
            .subtable(&self.protected)
            .expect("protected indices validated at resolve time")
    }

    /// The publishable file: the full original table with the winning
    /// protected columns substituted.
    ///
    /// # Errors
    /// Shape mismatch (cannot happen for reports built by the pipeline).
    pub fn published_best(&self) -> Result<Table> {
        Ok(self.table.with_subtable(&self.best.data)?)
    }
}
