//! The reusable execution context: evaluator preparation amortized across
//! jobs.
//!
//! Since the `cdp serve` refactor this type is a thin `&mut self` wrapper
//! over [`SharedSession`] — same cache, same counters, single-threaded
//! ergonomics. Code that wants to run jobs from several threads at once
//! (the protection server, sweep harnesses) should hold a
//! [`SharedSession`] directly, or take one via [`Session::shared`].

use cdp_dataset::SubTable;
use cdp_metrics::{Evaluator, MetricConfig};

use super::job::ProtectionJob;
use super::report::JobReport;
use super::shared::{SessionStats, SharedSession, SnapshotCacheConfig};
use super::stages::JobEvent;
use super::Result;

/// A job execution context that caches prepared originals.
///
/// Preparing an [`Evaluator`] computes the original file's ranks,
/// marginals, contingency tables and chance-agreement probabilities —
/// work that depends only on the original, not on the job. A `Session`
/// keeps those preparations, so sweeps (many jobs over one original) and
/// the protection server (many requests over few originals) pay the cost
/// once.
///
/// ```
/// use cdp::prelude::*;
///
/// let job = ProtectionJob::builder()
///     .dataset(DatasetKind::German)
///     .records(80)
///     .iterations(10)
///     .seed(3)
///     .build()
///     .unwrap();
/// let mut session = Session::new();
/// session.run(&job).unwrap();
/// session.run(&job).unwrap(); // same original: no second preparation
/// assert_eq!(session.preparations(), 1);
/// assert_eq!(session.stats().hits, 1);
/// ```
#[derive(Default)]
pub struct Session {
    shared: SharedSession,
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// How many evaluator preparations this session has performed (cache
    /// misses; the observable the reuse tests assert on).
    pub fn preparations(&self) -> usize {
        self.shared.stats().preparations
    }

    /// Number of distinct (original, metric-config) pairs currently cached.
    pub fn cached_evaluators(&self) -> usize {
        self.shared.stats().cached
    }

    /// The full cache counters (preparations, hits, misses, resident
    /// footprint) — the same snapshot jobs stream as
    /// [`JobEvent::CacheStats`].
    pub fn stats(&self) -> SessionStats {
        self.shared.stats()
    }

    /// The thread-safe session backing this one. Clones share the cache:
    /// jobs run through the clone count toward this session's stats and
    /// vice versa.
    pub fn shared(&self) -> SharedSession {
        self.shared.clone()
    }

    /// Drop all cached preparations (counters survive; they are session
    /// history, not cache contents).
    pub fn clear(&mut self) {
        self.shared.clear();
    }

    /// Attach (or with `None` detach) the persistent snapshot tier: cold
    /// preparations are written to disk and later sessions — even in a
    /// fresh process — rehydrate them instead of re-preparing. See
    /// [`SharedSession::set_snapshot_cache`].
    pub fn set_snapshot_cache(&mut self, config: Option<SnapshotCacheConfig>) {
        self.shared.set_snapshot_cache(config);
    }

    /// The evaluator for an original, preparing it on first sight. Returns
    /// the evaluator and whether it came from the cache.
    ///
    /// # Errors
    /// [`cdp_metrics::MetricError`] for an invalid metric configuration.
    pub fn evaluator_for(
        &mut self,
        original: &SubTable,
        cfg: MetricConfig,
    ) -> Result<(Evaluator, bool)> {
        self.shared.evaluator_for(original, cfg)
    }

    /// Execute a job.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run(&mut self, job: &ProtectionJob) -> Result<JobReport> {
        self.shared.run(job)
    }

    /// Execute a job, streaming [`JobEvent`]s to `observer`.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run_with<F: FnMut(&JobEvent)>(
        &mut self,
        job: &ProtectionJob,
        observer: F,
    ) -> Result<JobReport> {
        self.shared.run_with(job, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::DatasetKind;

    fn tiny_job(kind: DatasetKind, seed: u64, iterations: usize) -> ProtectionJob {
        ProtectionJob::builder()
            .dataset(kind)
            .records(60)
            .iterations(iterations)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn second_job_reuses_the_preparation() {
        let mut session = Session::new();
        let a = tiny_job(DatasetKind::Adult, 7, 5);
        let b = tiny_job(DatasetKind::Adult, 7, 8); // same original, new budget
        let ra = session.run(&a).unwrap();
        let rb = session.run(&b).unwrap();
        assert!(!ra.evaluator_reused);
        assert!(rb.evaluator_reused);
        assert_eq!(session.preparations(), 1);
        assert_eq!(session.cached_evaluators(), 1);
        let stats = session.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn different_original_prepares_again() {
        let mut session = Session::new();
        session.run(&tiny_job(DatasetKind::Adult, 7, 5)).unwrap();
        session.run(&tiny_job(DatasetKind::German, 7, 5)).unwrap();
        // same dataset, different generator seed -> different original
        session.run(&tiny_job(DatasetKind::Adult, 8, 5)).unwrap();
        assert_eq!(session.preparations(), 3);
    }

    #[test]
    fn clear_forgets_preparations() {
        let mut session = Session::new();
        let job = tiny_job(DatasetKind::Flare, 3, 5);
        session.run(&job).unwrap();
        session.clear();
        let r = session.run(&job).unwrap();
        assert!(!r.evaluator_reused);
        assert_eq!(session.preparations(), 2);
    }

    #[test]
    fn shared_clone_feeds_the_same_cache() {
        let mut session = Session::new();
        let job = tiny_job(DatasetKind::Adult, 9, 3);
        session.run(&job).unwrap();
        let report = session.shared().run(&job).unwrap();
        assert!(report.evaluator_reused, "clone sees the session's cache");
        assert_eq!(session.preparations(), 1);
        assert_eq!(session.stats().hits, 1);
    }

    fn tag_of(e: &JobEvent) -> &'static str {
        match e {
            JobEvent::SourceReady { .. } => "source",
            JobEvent::EvaluatorReady { .. } => "evaluator",
            JobEvent::CacheStats(_) => "cache",
            JobEvent::PopulationReady { .. } => "population",
            JobEvent::Generation(_) => "generation",
            JobEvent::FrontAdvanced { .. } => "front",
            JobEvent::IslandGeneration { .. } => "island-generation",
            JobEvent::IslandFront { .. } => "island-front",
            JobEvent::Migration { .. } => "migration",
            JobEvent::EvolutionFinished { .. } => "finished",
            JobEvent::AuditReady => "audit",
        }
    }

    #[test]
    fn events_stream_in_stage_order() {
        let mut session = Session::new();
        let job = tiny_job(DatasetKind::German, 5, 6);
        let mut tags = Vec::new();
        session.run_with(&job, |e| tags.push(tag_of(e))).unwrap();
        assert_eq!(tags[..4], ["source", "evaluator", "cache", "population"]);
        assert_eq!(tags.iter().filter(|t| **t == "generation").count(), 6);
        assert!(!tags.contains(&"front"), "scalar jobs emit no front events");
        assert_eq!(*tags.last().unwrap(), "finished");
    }

    #[test]
    fn cache_stats_event_reports_the_session_counters() {
        let mut session = Session::new();
        let job = tiny_job(DatasetKind::Adult, 6, 2);
        let mut snapshots = Vec::new();
        for _ in 0..2 {
            session
                .run_with(&job, |e| {
                    if let JobEvent::CacheStats(s) = e {
                        snapshots.push(s.clone());
                    }
                })
                .unwrap();
        }
        assert_eq!(snapshots.len(), 2);
        // first job: fresh miss, one preparation; second: pure hit
        assert_eq!((snapshots[0].misses, snapshots[0].hits), (1, 0));
        assert_eq!(snapshots[0].preparations, 1);
        assert_eq!((snapshots[1].misses, snapshots[1].hits), (1, 1));
        assert_eq!(snapshots[1].preparations, 1);
        assert_eq!(snapshots[1].hit_rate(), Some(0.5));
        assert_eq!(snapshots[1], session.stats(), "final snapshot is current");
    }

    #[test]
    fn nsga_job_streams_front_events_on_the_same_channel() {
        let mut session = Session::new();
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(60)
            .nsga()
            .iterations(4)
            .seed(5)
            .build()
            .unwrap();
        let mut tags = Vec::new();
        let mut fronts = Vec::new();
        session
            .run_with(&job, |e| {
                tags.push(tag_of(e));
                if let JobEvent::FrontAdvanced {
                    generation,
                    front_size,
                    hypervolume,
                    ideal,
                } = e
                {
                    // the ideal point leads with the canonical pair and
                    // is a per-objective lower bound of the front
                    assert_eq!(ideal.len(), 2, "default jobs keep the pair");
                    fronts.push((*generation, *front_size, *hypervolume));
                }
            })
            .unwrap();
        assert_eq!(tags[..4], ["source", "evaluator", "cache", "population"]);
        assert_eq!(tags.iter().filter(|t| **t == "front").count(), 4);
        assert!(!tags.contains(&"generation"), "nsga emits front events");
        assert_eq!(*tags.last().unwrap(), "finished");
        let report = session.run(&job).unwrap();
        let front = report.front().expect("nsga outcome");
        // event stream and report trajectory agree
        for (generation, front_size, hv) in fronts {
            assert_eq!(front.hypervolume[generation], hv);
            assert!(front_size >= 1);
        }
        assert_eq!(front.generations_run(), 4);
    }

    #[test]
    fn island_job_streams_per_island_events_deterministically() {
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(60)
            .iterations(24)
            .islands(3)
            .migration_interval(4)
            .seed(5)
            .build()
            .unwrap();
        let run = || {
            let mut session = Session::new();
            let mut tags = Vec::new();
            let mut events = Vec::new();
            let report = session
                .run_with(&job, |e| {
                    tags.push(tag_of(e));
                    events.push(e.clone());
                })
                .unwrap();
            (tags, events, report)
        };
        let (tags, events, report) = run();
        assert_eq!(tags[..4], ["source", "evaluator", "cache", "population"]);
        assert!(
            !tags.contains(&"generation"),
            "island jobs emit per-island events instead of the legacy kind"
        );
        assert_eq!(
            tags.iter().filter(|t| **t == "island-generation").count(),
            24,
            "the iteration budget is split across islands, not multiplied"
        );
        assert!(tags.contains(&"migration"));
        assert_eq!(*tags.last().unwrap(), "finished");

        // same job, fresh session: bit-identical events and winner
        let (_, events2, report2) = run();
        assert_eq!(events, events2);
        assert_eq!(report.best.data, report2.best.data);
    }

    #[test]
    fn island_nsga_job_streams_island_front_events() {
        let mut session = Session::new();
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(60)
            .nsga()
            .iterations(4)
            .islands(2)
            .migration_interval(2)
            .seed(5)
            .build()
            .unwrap();
        let mut tags = Vec::new();
        session.run_with(&job, |e| tags.push(tag_of(e))).unwrap();
        // each island runs the full generation count on its subpopulation
        assert_eq!(tags.iter().filter(|t| **t == "island-front").count(), 8);
        assert!(!tags.contains(&"front"), "island jobs use per-island kinds");
        assert!(tags.contains(&"migration"));
        assert_eq!(*tags.last().unwrap(), "finished");
    }

    fn snap_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("cdp_session_snapshot_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_rehydrated_jobs_are_bit_identical_in_both_modes() {
        for nsga in [false, true] {
            let dir = snap_dir(if nsga { "job-nsga" } else { "job-scalar" });
            let mut builder = ProtectionJob::builder()
                .dataset(DatasetKind::German)
                .records(60)
                .iterations(4)
                .seed(5)
                .snapshot_cache(SnapshotCacheConfig::new(&dir));
            if nsga {
                builder = builder.nsga();
            }
            let job = builder.build().unwrap();
            // cold run: prepares and writes the snapshot
            let mut cold = Session::new();
            let report_cold = cold.run(&job).unwrap();
            assert_eq!(cold.stats().snapshot_misses, 1);
            assert_eq!(cold.preparations(), 1);
            // fresh session (a new process, in effect): rehydrates
            let mut warm = Session::new();
            let report_warm = warm.run(&job).unwrap();
            assert_eq!(warm.preparations(), 0, "served entirely from disk");
            assert_eq!(warm.stats().snapshot_hits, 1);
            assert!(report_warm.evaluator_reused);
            // whole job output, bit for bit
            assert_eq!(report_cold.best.assessment, report_warm.best.assessment);
            assert_eq!(report_cold.best.data, report_warm.best.data);
            assert_eq!(report_cold.points, report_warm.points);
        }
    }

    #[test]
    fn cache_stats_event_carries_the_snapshot_counters() {
        let dir = snap_dir("event-counters");
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .records(60)
            .iterations(2)
            .seed(6)
            .snapshot_cache(SnapshotCacheConfig::new(&dir))
            .build()
            .unwrap();
        let mut session = Session::new();
        session.run(&job).unwrap();
        let mut seen = None;
        Session::new()
            .run_with(&job, |e| {
                if let JobEvent::CacheStats(s) = e {
                    seen = Some(s.clone());
                }
            })
            .unwrap();
        let stats = seen.expect("jobs stream a CacheStats event");
        assert_eq!(stats.snapshot_hits, 1, "second session loads from disk");
        assert_eq!(stats.preparations, 0);
    }

    #[test]
    fn mask_only_job_scores_without_evolving() {
        let mut session = Session::new();
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .records(60)
            .iterations(0)
            .seed(4)
            .build()
            .unwrap();
        let report = session.run(&job).unwrap();
        assert!(report.outcome.is_scored_only());
        assert_eq!(report.points.len(), report.population_size);
        let best_score = report
            .points
            .iter()
            .map(|p| p.score)
            .fold(f64::INFINITY, f64::min);
        let agg = job.evo_config().aggregator;
        assert!((report.best.assessment.score(agg) - best_score).abs() < 1e-12);
    }
}
