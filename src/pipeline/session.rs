//! The reusable execution context: evaluator preparation amortized across
//! jobs.

use cdp_dataset::SubTable;
use cdp_metrics::{Evaluator, MetricConfig};

use super::job::ProtectionJob;
use super::report::JobReport;
use super::stages::{run_job, JobEvent};
use super::Result;

/// One prepared evaluator, keyed by the original it was built for.
struct CacheEntry {
    original: SubTable,
    cfg: MetricConfig,
    evaluator: Evaluator,
}

/// A job execution context that caches prepared originals.
///
/// Preparing an [`Evaluator`] computes the original file's ranks,
/// marginals, contingency tables and chance-agreement probabilities —
/// work that depends only on the original, not on the job. A `Session`
/// keeps those preparations, so sweeps (many jobs over one original) and
/// future services (many requests over few originals) pay the cost once.
///
/// ```
/// use cdp::prelude::*;
///
/// let job = ProtectionJob::builder()
///     .dataset(DatasetKind::German)
///     .records(80)
///     .iterations(10)
///     .seed(3)
///     .build()
///     .unwrap();
/// let mut session = Session::new();
/// session.run(&job).unwrap();
/// session.run(&job).unwrap(); // same original: no second preparation
/// assert_eq!(session.preparations(), 1);
/// ```
#[derive(Default)]
pub struct Session {
    cache: Vec<CacheEntry>,
    preparations: usize,
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// How many evaluator preparations this session has performed (cache
    /// misses; the observable the reuse tests assert on).
    pub fn preparations(&self) -> usize {
        self.preparations
    }

    /// Number of distinct (original, metric-config) pairs currently cached.
    pub fn cached_evaluators(&self) -> usize {
        self.cache.len()
    }

    /// Drop all cached preparations.
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// The evaluator for an original, preparing it on first sight. Returns
    /// the evaluator and whether it came from the cache.
    ///
    /// # Errors
    /// [`cdp_metrics::MetricError`] for an invalid metric configuration.
    pub fn evaluator_for(
        &mut self,
        original: &SubTable,
        cfg: MetricConfig,
    ) -> Result<(Evaluator, bool)> {
        if let Some(entry) = self
            .cache
            .iter()
            .find(|e| e.cfg == cfg && e.original == *original)
        {
            return Ok((entry.evaluator.clone(), true));
        }
        let evaluator = Evaluator::new(original, cfg)?;
        self.preparations += 1;
        self.cache.push(CacheEntry {
            original: original.clone(),
            cfg,
            evaluator: evaluator.clone(),
        });
        Ok((evaluator, false))
    }

    /// Execute a job.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run(&mut self, job: &ProtectionJob) -> Result<JobReport> {
        self.run_with(job, |_| {})
    }

    /// Execute a job, streaming [`JobEvent`]s to `observer`.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run_with<F: FnMut(&JobEvent)>(
        &mut self,
        job: &ProtectionJob,
        mut observer: F,
    ) -> Result<JobReport> {
        run_job(self, job, &mut observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::DatasetKind;

    fn tiny_job(kind: DatasetKind, seed: u64, iterations: usize) -> ProtectionJob {
        ProtectionJob::builder()
            .dataset(kind)
            .records(60)
            .iterations(iterations)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn second_job_reuses_the_preparation() {
        let mut session = Session::new();
        let a = tiny_job(DatasetKind::Adult, 7, 5);
        let b = tiny_job(DatasetKind::Adult, 7, 8); // same original, new budget
        let ra = session.run(&a).unwrap();
        let rb = session.run(&b).unwrap();
        assert!(!ra.evaluator_reused);
        assert!(rb.evaluator_reused);
        assert_eq!(session.preparations(), 1);
        assert_eq!(session.cached_evaluators(), 1);
    }

    #[test]
    fn different_original_prepares_again() {
        let mut session = Session::new();
        session.run(&tiny_job(DatasetKind::Adult, 7, 5)).unwrap();
        session.run(&tiny_job(DatasetKind::German, 7, 5)).unwrap();
        // same dataset, different generator seed -> different original
        session.run(&tiny_job(DatasetKind::Adult, 8, 5)).unwrap();
        assert_eq!(session.preparations(), 3);
    }

    #[test]
    fn clear_forgets_preparations() {
        let mut session = Session::new();
        let job = tiny_job(DatasetKind::Flare, 3, 5);
        session.run(&job).unwrap();
        session.clear();
        let r = session.run(&job).unwrap();
        assert!(!r.evaluator_reused);
        assert_eq!(session.preparations(), 2);
    }

    fn tag_of(e: &JobEvent) -> &'static str {
        match e {
            JobEvent::SourceReady { .. } => "source",
            JobEvent::EvaluatorReady { .. } => "evaluator",
            JobEvent::PopulationReady { .. } => "population",
            JobEvent::Generation(_) => "generation",
            JobEvent::FrontAdvanced { .. } => "front",
            JobEvent::EvolutionFinished { .. } => "finished",
            JobEvent::AuditReady => "audit",
        }
    }

    #[test]
    fn events_stream_in_stage_order() {
        let mut session = Session::new();
        let job = tiny_job(DatasetKind::German, 5, 6);
        let mut tags = Vec::new();
        session.run_with(&job, |e| tags.push(tag_of(e))).unwrap();
        assert_eq!(tags[..3], ["source", "evaluator", "population"]);
        assert_eq!(tags.iter().filter(|t| **t == "generation").count(), 6);
        assert!(!tags.contains(&"front"), "scalar jobs emit no front events");
        assert_eq!(*tags.last().unwrap(), "finished");
    }

    #[test]
    fn nsga_job_streams_front_events_on_the_same_channel() {
        let mut session = Session::new();
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(60)
            .nsga()
            .iterations(4)
            .seed(5)
            .build()
            .unwrap();
        let mut tags = Vec::new();
        let mut fronts = Vec::new();
        session
            .run_with(&job, |e| {
                tags.push(tag_of(e));
                if let JobEvent::FrontAdvanced {
                    generation,
                    front_size,
                    hypervolume,
                } = e
                {
                    fronts.push((*generation, *front_size, *hypervolume));
                }
            })
            .unwrap();
        assert_eq!(tags[..3], ["source", "evaluator", "population"]);
        assert_eq!(tags.iter().filter(|t| **t == "front").count(), 4);
        assert!(!tags.contains(&"generation"), "nsga emits front events");
        assert_eq!(*tags.last().unwrap(), "finished");
        let report = session.run(&job).unwrap();
        let front = report.front().expect("nsga outcome");
        // event stream and report trajectory agree
        for (generation, front_size, hv) in fronts {
            assert_eq!(front.hypervolume[generation], hv);
            assert!(front_size >= 1);
        }
        assert_eq!(front.generations_run(), 4);
    }

    #[test]
    fn mask_only_job_scores_without_evolving() {
        let mut session = Session::new();
        let job = ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .records(60)
            .iterations(0)
            .seed(4)
            .build()
            .unwrap();
        let report = session.run(&job).unwrap();
        assert!(report.outcome.is_scored_only());
        assert_eq!(report.points.len(), report.population_size);
        let best_score = report
            .points
            .iter()
            .map(|p| p.score)
            .fold(f64::INFINITY, f64::min);
        let agg = job.evo_config().aggregator;
        assert!((report.best.assessment.score(agg) - best_score).abs() < 1e-12);
    }
}
