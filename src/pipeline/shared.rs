//! The concurrency-safe session: a shared evaluator cache many threads
//! amortize, plus the [`SessionStats`] observability counters.
//!
//! [`SharedSession`] is the seam the protection server (`cdp serve`)
//! builds on: N concurrent clients submitting jobs against the same
//! original must trigger exactly **one** preparation of that original's
//! measure statistics. The cache therefore coordinates at two levels:
//!
//! 1. a registry lock guards the list of cache slots (one per distinct
//!    `(original, MetricConfig)` pair) — held only to *find or insert* a
//!    slot, never while preparing;
//! 2. a per-slot lock guards the slot's evaluator — the first arrival
//!    prepares while holding it, racing arrivals block on the slot (not
//!    the registry) and wake up to a cache hit.
//!
//! Distinct originals prepare in parallel; the same original prepares
//! once no matter how many threads ask for it. [`Session`] (the
//! single-threaded API every example and the bench harness use) is a thin
//! wrapper over this type since the server refactor.
//!
//! [`Session`]: super::Session

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cdp_dataset::{Code, SubTable};
use cdp_metrics::{Evaluator, MetricConfig};

use super::job::ProtectionJob;
use super::report::JobReport;
use super::stages::{run_job, JobEvent};
use super::Result;

/// Cache observability counters of a session ([`SharedSession::stats`] /
/// [`Session::stats`]): how much preparation work the evaluator cache
/// amortized. Under server load, `hits / (hits + misses)` — the cache hit
/// rate — is the headline metric.
///
/// [`Session::stats`]: super::Session::stats
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Evaluator preparations actually performed (the expensive path:
    /// ranks, marginals, contingency tables, PRL census, pattern index).
    pub preparations: usize,
    /// Requests served from an already-registered slot. A request that
    /// arrives while the first one is still preparing counts as a hit —
    /// it blocks on the slot instead of re-preparing.
    pub hits: usize,
    /// Requests that had to register a new slot (== `preparations`, minus
    /// slots whose preparation failed and was evicted).
    pub misses: usize,
    /// Distinct `(original, MetricConfig)` slots currently cached.
    pub cached: usize,
    /// Approximate resident size of the cached preparations, in bytes:
    /// the retained original arenas plus the per-row agreement-pattern
    /// histograms (`n · 2^a` u32s per prepared original). A lower bound —
    /// contingency tables and rank stats are not counted.
    pub approx_bytes: usize,
    /// Per-slot detail, in registration order — one entry per cached
    /// `(original, MetricConfig)` pair (`entries.len() == cached`).
    pub entries: Vec<CacheEntryStats>,
}

/// Observability detail of one cache slot (one element of
/// [`SessionStats::entries`]): which original it holds, how often it was
/// hit, and what it costs to keep resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheEntryStats {
    /// Records of the cached original.
    pub rows: usize,
    /// Protected attributes of the cached original.
    pub attrs: usize,
    /// Requests served from this slot after its registration.
    pub hits: usize,
    /// Approximate resident bytes of this slot (same accounting as
    /// [`SessionStats::approx_bytes`]).
    pub approx_bytes: usize,
    /// Whether the slot's preparation has completed (`false` while the
    /// first arrival is still preparing it).
    pub prepared: bool,
}

impl SessionStats {
    /// Cache hit rate in `[0, 1]`; `None` before the first request.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// One cached preparation: the original it was built for, and the
/// evaluator — `None` while the first arrival is still preparing it.
struct CacheSlot {
    original: SubTable,
    cfg: MetricConfig,
    hits: AtomicUsize,
    evaluator: Mutex<Option<Evaluator>>,
}

impl CacheSlot {
    /// Approximate resident bytes (see [`SessionStats::approx_bytes`]).
    fn approx_bytes(&self, prepared: bool) -> usize {
        let (n, a) = (self.original.n_rows(), self.original.n_attrs());
        let arena = n * a * std::mem::size_of::<Code>();
        let prepared = if prepared {
            n * (1usize << a.min(24)) * std::mem::size_of::<u32>()
        } else {
            0
        };
        arena + prepared
    }

    /// The slot's [`SessionStats::entries`] element.
    fn entry_stats(&self) -> CacheEntryStats {
        let prepared = self.evaluator.lock().is_ok_and(|g| g.is_some());
        CacheEntryStats {
            rows: self.original.n_rows(),
            attrs: self.original.n_attrs(),
            hits: self.hits.load(Ordering::Relaxed),
            approx_bytes: self.approx_bytes(prepared),
            prepared,
        }
    }
}

/// The shared state behind every clone of one [`SharedSession`].
#[derive(Default)]
struct SharedCache {
    slots: Mutex<Vec<Arc<CacheSlot>>>,
    preparations: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// A cloneable, thread-safe job execution context: the evaluator cache of
/// [`Session`], shareable across threads.
///
/// Clones are shallow — every clone sees (and feeds) the same cache and
/// the same [`SessionStats`] counters. All methods take `&self`, so one
/// `SharedSession` can drive jobs from many worker threads concurrently;
/// jobs against the same original trigger exactly one preparation.
///
/// ```
/// use cdp::prelude::*;
///
/// let job = ProtectionJob::builder()
///     .dataset(DatasetKind::German)
///     .records(80)
///     .iterations(5)
///     .seed(3)
///     .build()
///     .unwrap();
/// let session = SharedSession::new();
/// std::thread::scope(|scope| {
///     for _ in 0..2 {
///         let session = session.clone();
///         let job = &job;
///         scope.spawn(move || session.run(job).unwrap());
///     }
/// });
/// let stats = session.stats();
/// assert_eq!(stats.preparations, 1); // the second job waited, then hit
/// assert_eq!(stats.hits, 1);
/// ```
///
/// [`Session`]: super::Session
#[derive(Clone, Default)]
pub struct SharedSession {
    cache: Arc<SharedCache>,
}

impl SharedSession {
    /// An empty shared session.
    pub fn new() -> Self {
        SharedSession::default()
    }

    /// Current cache counters. Cheap (two lock acquisitions, no
    /// preparation work); safe to poll per request.
    pub fn stats(&self) -> SessionStats {
        let slots = self.cache.slots.lock().expect("cache registry lock");
        let entries: Vec<CacheEntryStats> = slots.iter().map(|s| s.entry_stats()).collect();
        SessionStats {
            preparations: self.cache.preparations.load(Ordering::Relaxed),
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
            cached: slots.len(),
            approx_bytes: entries.iter().map(|e| e.approx_bytes).sum(),
            entries,
        }
    }

    /// Drop every cached preparation. Counters are cumulative and survive
    /// the clear (they describe session history, not cache contents).
    pub fn clear(&self) {
        self.cache
            .slots
            .lock()
            .expect("cache registry lock")
            .clear();
    }

    /// The evaluator for an original, preparing it on first sight.
    /// Returns the evaluator and whether it came from the cache.
    ///
    /// Concurrent calls for the *same* `(original, cfg)` key serialize on
    /// that key's slot: exactly one caller prepares, the rest block and
    /// receive the cached clone (`reused = true`). Calls for distinct
    /// keys prepare in parallel.
    ///
    /// # Errors
    /// [`cdp_metrics::MetricError`] for an invalid metric configuration;
    /// the failed slot is evicted, so a later corrected call re-prepares.
    pub fn evaluator_for(
        &self,
        original: &SubTable,
        cfg: MetricConfig,
    ) -> Result<(Evaluator, bool)> {
        let (slot, registered) = {
            let mut slots = self.cache.slots.lock().expect("cache registry lock");
            match slots
                .iter()
                .find(|s| s.cfg == cfg && s.original == *original)
            {
                Some(slot) => {
                    slot.hits.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(slot), false)
                }
                None => {
                    let slot = Arc::new(CacheSlot {
                        original: original.clone(),
                        cfg,
                        hits: AtomicUsize::new(0),
                        evaluator: Mutex::new(None),
                    });
                    slots.push(Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if registered {
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut guard = slot.evaluator.lock().expect("cache slot lock");
        if let Some(evaluator) = guard.as_ref() {
            return Ok((evaluator.clone(), true));
        }
        match Evaluator::new(&slot.original, cfg) {
            Ok(evaluator) => {
                self.cache.preparations.fetch_add(1, Ordering::Relaxed);
                *guard = Some(evaluator.clone());
                // a racing caller that found the slot mid-preparation
                // still reused the preparation — only the registrant paid
                Ok((evaluator, !registered))
            }
            Err(e) => {
                drop(guard);
                // failed preparations must not poison the cache
                let mut slots = self.cache.slots.lock().expect("cache registry lock");
                if let Some(i) = slots.iter().position(|s| Arc::ptr_eq(s, &slot)) {
                    slots.remove(i);
                }
                Err(e.into())
            }
        }
    }

    /// Execute a job.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run(&self, job: &ProtectionJob) -> Result<JobReport> {
        self.run_with(job, |_| {})
    }

    /// Execute a job, streaming [`JobEvent`]s to `observer`.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run_with<F: FnMut(&JobEvent)>(
        &self,
        job: &ProtectionJob,
        mut observer: F,
    ) -> Result<JobReport> {
        run_job(self, job, &mut observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::DatasetKind;

    fn tiny_job(kind: DatasetKind, seed: u64, iterations: usize) -> ProtectionJob {
        ProtectionJob::builder()
            .dataset(kind)
            .records(60)
            .iterations(iterations)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn concurrent_jobs_on_one_original_prepare_once() {
        let session = SharedSession::new();
        let job = tiny_job(DatasetKind::Adult, 7, 3);
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let session = session.clone();
                let (job, barrier) = (&job, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    session.run(job).unwrap();
                });
            }
        });
        let stats = session.stats();
        assert_eq!(stats.preparations, 1, "one hot original, one preparation");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.cached, 1);
        assert_eq!(stats.hit_rate(), Some(0.75));
    }

    #[test]
    fn concurrent_distinct_originals_prepare_independently() {
        let session = SharedSession::new();
        let kinds = [DatasetKind::Adult, DatasetKind::German, DatasetKind::Flare];
        std::thread::scope(|scope| {
            for kind in kinds {
                let session = session.clone();
                scope.spawn(move || session.run(&tiny_job(kind, 5, 2)).unwrap());
            }
        });
        let stats = session.stats();
        assert_eq!(stats.preparations, 3);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.cached, 3);
    }

    #[test]
    fn shared_run_matches_owned_session_bit_for_bit() {
        let job = tiny_job(DatasetKind::German, 11, 6);
        let shared = SharedSession::new().run(&job).unwrap();
        let owned = super::super::Session::new().run(&job).unwrap();
        assert_eq!(shared.best.assessment, owned.best.assessment);
        assert_eq!(shared.best.name, owned.best.name);
        assert_eq!(shared.best.data, owned.best.data);
        assert_eq!(shared.points.len(), owned.points.len());
        for (a, b) in shared.points.iter().zip(&owned.points) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn clear_drops_slots_but_keeps_history() {
        let session = SharedSession::new();
        let job = tiny_job(DatasetKind::Flare, 3, 2);
        session.run(&job).unwrap();
        assert_eq!(session.stats().cached, 1);
        session.clear();
        let stats = session.stats();
        assert_eq!(stats.cached, 0);
        assert_eq!(stats.approx_bytes, 0);
        assert_eq!(stats.preparations, 1, "history survives the clear");
        session.run(&job).unwrap();
        assert_eq!(session.stats().preparations, 2);
    }

    #[test]
    fn failed_preparation_is_evicted_not_cached() {
        let session = SharedSession::new();
        let ds = DatasetKind::Adult
            .generate(&cdp_dataset::generators::GeneratorConfig::seeded(1).with_records(30));
        let original = ds.protected_subtable();
        let bad = MetricConfig {
            prl_em_iters: 0, // rejected by the evaluator
            ..MetricConfig::default()
        };
        if session.evaluator_for(&original, bad).is_err() {
            let stats = session.stats();
            assert_eq!(stats.cached, 0, "failed slot must be evicted");
            assert_eq!(stats.preparations, 0);
        }
        // a corrected call on the same original works
        let (_, reused) = session
            .evaluator_for(&original, MetricConfig::default())
            .unwrap();
        assert!(!reused);
        assert_eq!(session.stats().cached, 1);
    }

    #[test]
    fn stats_report_nonzero_footprint() {
        let session = SharedSession::new();
        session.run(&tiny_job(DatasetKind::Adult, 2, 0)).unwrap();
        let stats = session.stats();
        assert!(stats.approx_bytes > 0);
        assert!(stats.hit_rate().is_some());
    }

    #[test]
    fn per_entry_stats_track_slot_hits_and_footprint() {
        let session = SharedSession::new();
        let adult = tiny_job(DatasetKind::Adult, 7, 0);
        let german = tiny_job(DatasetKind::German, 7, 0);
        session.run(&adult).unwrap();
        session.run(&adult).unwrap();
        session.run(&adult).unwrap();
        session.run(&german).unwrap();
        let stats = session.stats();
        assert_eq!(stats.entries.len(), stats.cached);
        assert_eq!(stats.entries.len(), 2);
        // registration order: the adult slot first, hit twice after its miss
        let (a, g) = (&stats.entries[0], &stats.entries[1]);
        assert_eq!(a.hits, 2);
        assert_eq!(g.hits, 0);
        assert!(a.prepared && g.prepared);
        assert_eq!(a.rows, 60);
        assert!(a.attrs > 0);
        // the aggregate footprint is exactly the sum of the entries
        assert_eq!(
            stats.approx_bytes,
            stats.entries.iter().map(|e| e.approx_bytes).sum::<usize>()
        );
        // per-slot hits partition the session-wide hit counter
        assert_eq!(
            stats.hits,
            stats.entries.iter().map(|e| e.hits).sum::<usize>()
        );
    }
}
