//! The concurrency-safe session: a shared evaluator cache many threads
//! amortize, plus the [`SessionStats`] observability counters.
//!
//! [`SharedSession`] is the seam the protection server (`cdp serve`)
//! builds on: N concurrent clients submitting jobs against the same
//! original must trigger exactly **one** preparation of that original's
//! measure statistics. The cache therefore coordinates at two levels:
//!
//! 1. a registry lock guards the list of cache slots (one per distinct
//!    `(original, MetricConfig)` pair) — held only to *find or insert* a
//!    slot, never while preparing;
//! 2. a per-slot lock guards the slot's evaluator — the first arrival
//!    prepares while holding it, racing arrivals block on the slot (not
//!    the registry) and wake up to a cache hit.
//!
//! Distinct originals prepare in parallel; the same original prepares
//! once no matter how many threads ask for it. [`Session`] (the
//! single-threaded API every example and the bench harness use) is a thin
//! wrapper over this type since the server refactor.
//!
//! # The snapshot tier
//!
//! With [`SharedSession::set_snapshot_cache`] the in-memory cache gains a
//! second, persistent tier backed by [`cdp_metrics::snapshot`] files:
//!
//! * an in-memory **miss** first tries the snapshot directory — a valid
//!   snapshot rehydrates the evaluator with a near-memcpy load
//!   ([`SessionStats::snapshot_hits`]) instead of a cold preparation;
//! * every cold preparation is written back (atomically, temp + rename),
//!   so the *next process* starts warm;
//! * an optional byte cap turns the in-memory tier into an LRU: when the
//!   resident prepared state exceeds the cap, least-recently-used slots
//!   are demoted ([`SessionStats::evictions`]) — their evaluators drop
//!   from memory but fault back from disk on the next request, never
//!   re-preparing.
//!
//! [`Session`]: super::Session

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cdp_dataset::{Code, SubTable};
use cdp_metrics::{snapshot, Evaluator, MetricConfig};

use super::job::ProtectionJob;
use super::report::JobReport;
use super::stages::{run_job, JobEvent};
use super::Result;

/// Configuration of the persistent snapshot tier
/// ([`SharedSession::set_snapshot_cache`]): where prepared-evaluator
/// snapshots live on disk, and an optional LRU byte cap on the in-memory
/// tier above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCacheConfig {
    dir: PathBuf,
    cap_bytes: Option<usize>,
}

impl SnapshotCacheConfig {
    /// Snapshot tier rooted at `dir` (created on first write), no cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SnapshotCacheConfig {
            dir: dir.into(),
            cap_bytes: None,
        }
    }

    /// Cap the in-memory tier's *evictable* resident bytes (the prepared
    /// state; the original arenas that key the slots are never evicted).
    /// When an insert pushes the resident prepared state past the cap,
    /// least-recently-used slots demote to disk until it fits — a cap of
    /// `0` keeps nothing in memory and serves every request from disk.
    #[must_use]
    pub fn with_cap(mut self, cap_bytes: usize) -> Self {
        self.cap_bytes = Some(cap_bytes);
        self
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The in-memory LRU cap in bytes, if any.
    pub fn cap_bytes(&self) -> Option<usize> {
        self.cap_bytes
    }
}

/// Cache observability counters of a session ([`SharedSession::stats`] /
/// [`Session::stats`]): how much preparation work the evaluator cache
/// amortized. Under server load, `hits / (hits + misses)` — the cache hit
/// rate — is the headline metric.
///
/// [`Session::stats`]: super::Session::stats
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Evaluator preparations actually performed (the expensive cold
    /// path: ranks, marginals, contingency tables, PRL census, pattern
    /// index). Snapshot loads do **not** count here.
    pub preparations: usize,
    /// Requests served from an already-registered slot. A request that
    /// arrives while the first one is still preparing counts as a hit —
    /// it blocks on the slot instead of re-preparing.
    pub hits: usize,
    /// Requests that had to register a new slot (== `preparations` +
    /// `snapshot_hits`, minus slots whose preparation failed and was
    /// evicted).
    pub misses: usize,
    /// Evaluators rehydrated from an on-disk snapshot instead of a cold
    /// preparation — both first-sight loads and post-eviction fault-backs.
    pub snapshot_hits: usize,
    /// Disk lookups that found no usable snapshot (missing, corrupt,
    /// stale content hash, wrong format version) and fell back to a cold
    /// preparation. Zero unless a snapshot cache is configured.
    pub snapshot_misses: usize,
    /// In-memory slots demoted to disk by the LRU byte cap. Evicted
    /// slots fault back from their snapshot, so an eviction never causes
    /// a re-preparation.
    pub evictions: usize,
    /// Distinct `(original, MetricConfig)` slots currently cached.
    pub cached: usize,
    /// Approximate resident size of the cache, in bytes: the retained
    /// original arenas plus, per prepared slot, every component of the
    /// prepared state — marginal counts/probabilities, rank statistics,
    /// contingency tables, the pattern index with its postings, and the
    /// evaluator's retained copy of the original.
    pub approx_bytes: usize,
    /// Per-slot detail, in registration order — one entry per cached
    /// `(original, MetricConfig)` pair (`entries.len() == cached`).
    pub entries: Vec<CacheEntryStats>,
}

/// Observability detail of one cache slot (one element of
/// [`SessionStats::entries`]): which original it holds, how often it was
/// hit, and what it costs to keep resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheEntryStats {
    /// Records of the cached original.
    pub rows: usize,
    /// Protected attributes of the cached original.
    pub attrs: usize,
    /// Requests served from this slot after its registration.
    pub hits: usize,
    /// Approximate resident bytes of this slot (same accounting as
    /// [`SessionStats::approx_bytes`]).
    pub approx_bytes: usize,
    /// Whether the slot's evaluator is resident in memory (`false` while
    /// the first arrival is still preparing it, or after an LRU
    /// eviction demoted it to its on-disk snapshot).
    pub prepared: bool,
}

impl SessionStats {
    /// Cache hit rate in `[0, 1]`; `None` before the first request.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// One cached preparation: the original it was built for, and the
/// evaluator — `None` while the first arrival is still preparing it or
/// after an LRU eviction demoted it to disk.
struct CacheSlot {
    original: SubTable,
    cfg: MetricConfig,
    hits: AtomicUsize,
    /// LRU stamp: the session clock value of the last request that
    /// touched this slot. Never decreases.
    last_used: AtomicUsize,
    evaluator: Mutex<Option<Evaluator>>,
}

impl CacheSlot {
    /// Bytes of the retained original arena — the slot's irreducible
    /// footprint, kept even after eviction (it is the cache key).
    fn arena_bytes(&self) -> usize {
        self.original.flat_len() * std::mem::size_of::<Code>()
    }

    /// The slot's [`SessionStats::entries`] element.
    fn entry_stats(&self) -> CacheEntryStats {
        let guard = self.evaluator.lock().expect("cache slot lock");
        let evaluator_bytes = guard.as_ref().map_or(0, Evaluator::approx_bytes);
        CacheEntryStats {
            rows: self.original.n_rows(),
            attrs: self.original.n_attrs(),
            hits: self.hits.load(Ordering::Relaxed),
            approx_bytes: self.arena_bytes() + evaluator_bytes,
            prepared: guard.is_some(),
        }
    }
}

/// The shared state behind every clone of one [`SharedSession`].
#[derive(Default)]
struct SharedCache {
    slots: Mutex<Vec<Arc<CacheSlot>>>,
    snapshot: Mutex<Option<SnapshotCacheConfig>>,
    preparations: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    snapshot_hits: AtomicUsize,
    snapshot_misses: AtomicUsize,
    evictions: AtomicUsize,
    /// Monotonic request counter feeding the slots' LRU stamps.
    clock: AtomicUsize,
}

/// A cloneable, thread-safe job execution context: the evaluator cache of
/// [`Session`], shareable across threads.
///
/// Clones are shallow — every clone sees (and feeds) the same cache and
/// the same [`SessionStats`] counters. All methods take `&self`, so one
/// `SharedSession` can drive jobs from many worker threads concurrently;
/// jobs against the same original trigger exactly one preparation.
///
/// ```
/// use cdp::prelude::*;
///
/// let job = ProtectionJob::builder()
///     .dataset(DatasetKind::German)
///     .records(80)
///     .iterations(5)
///     .seed(3)
///     .build()
///     .unwrap();
/// let session = SharedSession::new();
/// std::thread::scope(|scope| {
///     for _ in 0..2 {
///         let session = session.clone();
///         let job = &job;
///         scope.spawn(move || session.run(job).unwrap());
///     }
/// });
/// let stats = session.stats();
/// assert_eq!(stats.preparations, 1); // the second job waited, then hit
/// assert_eq!(stats.hits, 1);
/// ```
///
/// [`Session`]: super::Session
#[derive(Clone, Default)]
pub struct SharedSession {
    cache: Arc<SharedCache>,
}

impl SharedSession {
    /// An empty shared session.
    pub fn new() -> Self {
        SharedSession::default()
    }

    /// Current cache counters. Cheap (lock acquisitions only, no
    /// preparation work); safe to poll per request.
    pub fn stats(&self) -> SessionStats {
        let slots = self.cache.slots.lock().expect("cache registry lock");
        let entries: Vec<CacheEntryStats> = slots.iter().map(|s| s.entry_stats()).collect();
        SessionStats {
            preparations: self.cache.preparations.load(Ordering::Relaxed),
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
            snapshot_hits: self.cache.snapshot_hits.load(Ordering::Relaxed),
            snapshot_misses: self.cache.snapshot_misses.load(Ordering::Relaxed),
            evictions: self.cache.evictions.load(Ordering::Relaxed),
            cached: slots.len(),
            approx_bytes: entries.iter().map(|e| e.approx_bytes).sum(),
            entries,
        }
    }

    /// Attach (or with `None` detach) the persistent snapshot tier: see
    /// the module docs. Takes effect for every subsequent request on any
    /// clone of this session; if the new config carries a lower byte cap
    /// than the current residency, the excess is evicted immediately.
    pub fn set_snapshot_cache(&self, config: Option<SnapshotCacheConfig>) {
        let cap = config.as_ref().and_then(SnapshotCacheConfig::cap_bytes);
        *self.cache.snapshot.lock().expect("snapshot config lock") = config;
        if let Some(cap) = cap {
            self.enforce_cap(cap);
        }
    }

    /// The currently attached snapshot-tier configuration, if any.
    pub fn snapshot_cache(&self) -> Option<SnapshotCacheConfig> {
        self.cache
            .snapshot
            .lock()
            .expect("snapshot config lock")
            .clone()
    }

    /// Drop every cached preparation. Counters are cumulative and survive
    /// the clear (they describe session history, not cache contents).
    pub fn clear(&self) {
        self.cache
            .slots
            .lock()
            .expect("cache registry lock")
            .clear();
    }

    /// The evaluator for an original, preparing it on first sight.
    /// Returns the evaluator and whether it came from the cache.
    ///
    /// Concurrent calls for the *same* `(original, cfg)` key serialize on
    /// that key's slot: exactly one caller prepares, the rest block and
    /// receive the cached clone (`reused = true`). Calls for distinct
    /// keys prepare in parallel.
    ///
    /// With a snapshot cache attached, an in-memory miss (a fresh slot,
    /// or one the LRU demoted) first tries the snapshot directory; a
    /// rehydrated evaluator also counts as `reused = true` — the caller
    /// got a cached preparation, just from disk.
    ///
    /// # Errors
    /// [`cdp_metrics::MetricError`] for an invalid metric configuration;
    /// the failed slot is evicted, so a later corrected call re-prepares.
    pub fn evaluator_for(
        &self,
        original: &SubTable,
        cfg: MetricConfig,
    ) -> Result<(Evaluator, bool)> {
        let (slot, registered) = {
            let mut slots = self.cache.slots.lock().expect("cache registry lock");
            match slots
                .iter()
                .find(|s| s.cfg == cfg && s.original == *original)
            {
                Some(slot) => {
                    slot.hits.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(slot), false)
                }
                None => {
                    let slot = Arc::new(CacheSlot {
                        original: original.clone(),
                        cfg,
                        hits: AtomicUsize::new(0),
                        last_used: AtomicUsize::new(0),
                        evaluator: Mutex::new(None),
                    });
                    slots.push(Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if registered {
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
        }
        slot.last_used.store(
            self.cache.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let snap = self.snapshot_cache();
        let mut guard = slot.evaluator.lock().expect("cache slot lock");
        if let Some(evaluator) = guard.as_ref() {
            return Ok((evaluator.clone(), true));
        }
        if let Some(snap) = &snap {
            let path = snapshot::snapshot_path(snap.dir(), &slot.original, &cfg);
            if let Some(evaluator) = snapshot::load(&path, &slot.original, &cfg) {
                self.cache.snapshot_hits.fetch_add(1, Ordering::Relaxed);
                *guard = Some(evaluator.clone());
                drop(guard);
                if let Some(cap) = snap.cap_bytes() {
                    self.enforce_cap(cap);
                }
                return Ok((evaluator, true));
            }
            self.cache.snapshot_misses.fetch_add(1, Ordering::Relaxed);
        }
        match Evaluator::new(&slot.original, cfg) {
            Ok(evaluator) => {
                self.cache.preparations.fetch_add(1, Ordering::Relaxed);
                *guard = Some(evaluator.clone());
                drop(guard);
                if let Some(snap) = &snap {
                    // write-back is an optimization: a full disk or
                    // unwritable directory must not fail the job
                    let _ = snapshot::write(&evaluator, snap.dir());
                    if let Some(cap) = snap.cap_bytes() {
                        self.enforce_cap(cap);
                    }
                }
                // a racing caller that found the slot mid-preparation
                // still reused the preparation — only the registrant paid
                Ok((evaluator, !registered))
            }
            Err(e) => {
                drop(guard);
                // failed preparations must not poison the cache
                let mut slots = self.cache.slots.lock().expect("cache registry lock");
                if let Some(i) = slots.iter().position(|s| Arc::ptr_eq(s, &slot)) {
                    slots.remove(i);
                }
                Err(e.into())
            }
        }
    }

    /// Demote least-recently-used prepared slots until the resident
    /// evictable bytes (the in-memory prepared state; retained arenas
    /// are the cache keys and never count) fit under `cap`.
    ///
    /// Slots whose evaluator lock is held by a concurrent request are
    /// skipped — under contention the cap is enforced best-effort and
    /// re-checked on the next insert; with no concurrent holders (every
    /// single-threaded caller) the bound is exact after every insert.
    fn enforce_cap(&self, cap: usize) {
        let slots = self.cache.slots.lock().expect("cache registry lock");
        loop {
            let mut resident = 0usize;
            let mut lru: Option<(usize, usize)> = None; // (stamp, index)
            for (i, slot) in slots.iter().enumerate() {
                let Ok(guard) = slot.evaluator.try_lock() else {
                    continue;
                };
                if let Some(evaluator) = guard.as_ref() {
                    resident += evaluator.approx_bytes();
                    let stamp = slot.last_used.load(Ordering::Relaxed);
                    if lru.is_none_or(|(s, _)| stamp < s) {
                        lru = Some((stamp, i));
                    }
                }
            }
            if resident <= cap {
                return;
            }
            let Some((_, victim)) = lru else { return };
            if let Ok(mut guard) = slots[victim].evaluator.try_lock() {
                if guard.take().is_some() {
                    self.cache.evictions.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            // the victim got busy between the two passes; don't spin
            return;
        }
    }

    /// Execute a job.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run(&self, job: &ProtectionJob) -> Result<JobReport> {
        self.run_with(job, |_| {})
    }

    /// Execute a job, streaming [`JobEvent`]s to `observer`.
    ///
    /// # Errors
    /// Any [`super::PipelineError`] raised by a stage.
    pub fn run_with<F: FnMut(&JobEvent)>(
        &self,
        job: &ProtectionJob,
        mut observer: F,
    ) -> Result<JobReport> {
        run_job(self, job, &mut observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::DatasetKind;

    fn tiny_job(kind: DatasetKind, seed: u64, iterations: usize) -> ProtectionJob {
        ProtectionJob::builder()
            .dataset(kind)
            .records(60)
            .iterations(iterations)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn concurrent_jobs_on_one_original_prepare_once() {
        let session = SharedSession::new();
        let job = tiny_job(DatasetKind::Adult, 7, 3);
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let session = session.clone();
                let (job, barrier) = (&job, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    session.run(job).unwrap();
                });
            }
        });
        let stats = session.stats();
        assert_eq!(stats.preparations, 1, "one hot original, one preparation");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.cached, 1);
        assert_eq!(stats.hit_rate(), Some(0.75));
    }

    #[test]
    fn concurrent_distinct_originals_prepare_independently() {
        let session = SharedSession::new();
        let kinds = [DatasetKind::Adult, DatasetKind::German, DatasetKind::Flare];
        std::thread::scope(|scope| {
            for kind in kinds {
                let session = session.clone();
                scope.spawn(move || session.run(&tiny_job(kind, 5, 2)).unwrap());
            }
        });
        let stats = session.stats();
        assert_eq!(stats.preparations, 3);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.cached, 3);
    }

    #[test]
    fn shared_run_matches_owned_session_bit_for_bit() {
        let job = tiny_job(DatasetKind::German, 11, 6);
        let shared = SharedSession::new().run(&job).unwrap();
        let owned = super::super::Session::new().run(&job).unwrap();
        assert_eq!(shared.best.assessment, owned.best.assessment);
        assert_eq!(shared.best.name, owned.best.name);
        assert_eq!(shared.best.data, owned.best.data);
        assert_eq!(shared.points.len(), owned.points.len());
        for (a, b) in shared.points.iter().zip(&owned.points) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn clear_drops_slots_but_keeps_history() {
        let session = SharedSession::new();
        let job = tiny_job(DatasetKind::Flare, 3, 2);
        session.run(&job).unwrap();
        assert_eq!(session.stats().cached, 1);
        session.clear();
        let stats = session.stats();
        assert_eq!(stats.cached, 0);
        assert_eq!(stats.approx_bytes, 0);
        assert_eq!(stats.preparations, 1, "history survives the clear");
        session.run(&job).unwrap();
        assert_eq!(session.stats().preparations, 2);
    }

    #[test]
    fn failed_preparation_is_evicted_not_cached() {
        let session = SharedSession::new();
        let ds = DatasetKind::Adult
            .generate(&cdp_dataset::generators::GeneratorConfig::seeded(1).with_records(30));
        let original = ds.protected_subtable();
        let bad = MetricConfig {
            prl_em_iters: 0, // rejected by the evaluator
            ..MetricConfig::default()
        };
        if session.evaluator_for(&original, bad).is_err() {
            let stats = session.stats();
            assert_eq!(stats.cached, 0, "failed slot must be evicted");
            assert_eq!(stats.preparations, 0);
        }
        // a corrected call on the same original works
        let (_, reused) = session
            .evaluator_for(&original, MetricConfig::default())
            .unwrap();
        assert!(!reused);
        assert_eq!(session.stats().cached, 1);
    }

    #[test]
    fn stats_report_nonzero_footprint() {
        let session = SharedSession::new();
        session.run(&tiny_job(DatasetKind::Adult, 2, 0)).unwrap();
        let stats = session.stats();
        assert!(stats.approx_bytes > 0);
        assert!(stats.hit_rate().is_some());
    }

    #[test]
    fn per_entry_stats_track_slot_hits_and_footprint() {
        let session = SharedSession::new();
        let adult = tiny_job(DatasetKind::Adult, 7, 0);
        let german = tiny_job(DatasetKind::German, 7, 0);
        session.run(&adult).unwrap();
        session.run(&adult).unwrap();
        session.run(&adult).unwrap();
        session.run(&german).unwrap();
        let stats = session.stats();
        assert_eq!(stats.entries.len(), stats.cached);
        assert_eq!(stats.entries.len(), 2);
        // registration order: the adult slot first, hit twice after its miss
        let (a, g) = (&stats.entries[0], &stats.entries[1]);
        assert_eq!(a.hits, 2);
        assert_eq!(g.hits, 0);
        assert!(a.prepared && g.prepared);
        assert_eq!(a.rows, 60);
        assert!(a.attrs > 0);
        // the aggregate footprint is exactly the sum of the entries
        assert_eq!(
            stats.approx_bytes,
            stats.entries.iter().map(|e| e.approx_bytes).sum::<usize>()
        );
        // per-slot hits partition the session-wide hit counter
        assert_eq!(
            stats.hits,
            stats.entries.iter().map(|e| e.hits).sum::<usize>()
        );
        // no snapshot cache attached: the disk-tier counters stay zero
        assert_eq!(
            (stats.snapshot_hits, stats.snapshot_misses, stats.evictions),
            (0, 0, 0)
        );
    }

    fn snap_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("cdp_shared_snapshot_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn original(kind: DatasetKind, n: usize) -> SubTable {
        kind.generate(&cdp_dataset::generators::GeneratorConfig::seeded(9).with_records(n))
            .protected_subtable()
    }

    #[test]
    fn snapshot_tier_warms_a_new_session() {
        let dir = snap_dir("warm");
        let orig = original(DatasetKind::Adult, 60);
        let cfg = MetricConfig::default();
        let cold = SharedSession::new();
        cold.set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir)));
        let (ev_cold, reused) = cold.evaluator_for(&orig, cfg).unwrap();
        assert!(!reused);
        let s = cold.stats();
        assert_eq!(
            (s.preparations, s.snapshot_hits, s.snapshot_misses),
            (1, 0, 1),
            "first sight: empty directory, cold prepare, write-back"
        );
        // a brand-new session — a new process, in effect — starts warm
        let warm = SharedSession::new();
        warm.set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir)));
        let (ev_warm, reused) = warm.evaluator_for(&orig, cfg).unwrap();
        assert!(reused, "a snapshot load is a reuse, not a preparation");
        let s = warm.stats();
        assert_eq!(
            (s.preparations, s.snapshot_hits, s.snapshot_misses),
            (0, 1, 0)
        );
        // the rehydrated evaluator assesses bit-identically
        let mut masked = orig.clone();
        for r in 0..masked.n_rows() {
            let c = masked.attr(1).n_categories() as Code;
            masked.set(r, 1, (masked.get(r, 1) + 1) % c);
        }
        assert_eq!(ev_cold.evaluate(&orig), ev_warm.evaluate(&orig));
        assert_eq!(ev_cold.evaluate(&masked), ev_warm.evaluate(&masked));
    }

    #[test]
    fn eviction_faults_back_from_disk_without_repreparing() {
        let dir = snap_dir("faultback");
        let orig = original(DatasetKind::German, 60);
        let cfg = MetricConfig::default();
        let session = SharedSession::new();
        session.set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir).with_cap(0)));
        let (first, _) = session.evaluator_for(&orig, cfg).unwrap();
        let s = session.stats();
        assert_eq!(s.preparations, 1);
        assert_eq!(s.evictions, 1, "cap 0 demotes the slot immediately");
        assert!(!s.entries[0].prepared);
        // the next request faults back from disk: a registry hit plus a
        // snapshot load — never a second preparation
        let (second, reused) = session.evaluator_for(&orig, cfg).unwrap();
        assert!(reused);
        let s = session.stats();
        assert_eq!(s.preparations, 1, "eviction must not cause re-preparation");
        assert_eq!(s.hits, 1);
        assert_eq!(s.snapshot_hits, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(first.evaluate(&orig), second.evaluate(&orig));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_slot_first() {
        let dir = snap_dir("lru");
        let cfg = MetricConfig::default();
        let a = original(DatasetKind::Adult, 60);
        let b = original(DatasetKind::German, 60);
        let c = original(DatasetKind::Flare, 60);
        let session = SharedSession::new();
        session.set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir)));
        let (ea, _) = session.evaluator_for(&a, cfg).unwrap();
        let (eb, _) = session.evaluator_for(&b, cfg).unwrap();
        let (ec, _) = session.evaluator_for(&c, cfg).unwrap();
        let total = ea.approx_bytes() + eb.approx_bytes() + ec.approx_bytes();
        // one byte short of everything: exactly one eviction, LRU first
        session.set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir).with_cap(total - 1)));
        let s = session.stats();
        assert_eq!(s.evictions, 1);
        assert!(!s.entries[0].prepared, "A was the least recently used");
        assert!(s.entries[1].prepared && s.entries[2].prepared);
        // touching A faults it back and pushes out B, the new LRU
        session.evaluator_for(&a, cfg).unwrap();
        let s = session.stats();
        assert_eq!(s.snapshot_hits, 1);
        assert_eq!(s.preparations, 3, "no re-preparation anywhere");
        assert_eq!(s.evictions, 2);
        assert!(s.entries[0].prepared);
        assert!(!s.entries[1].prepared, "B became the LRU after A's touch");
        assert!(s.entries[2].prepared);
    }

    mod lru_property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 16 })]
            #[test]
            fn resident_bytes_never_exceed_the_cap(
                seq in proptest::collection::vec(0usize..3, 1..10),
                cap_kib in 0usize..260,
            ) {
                let dir = snap_dir("prop");
                let pool = [
                    original(DatasetKind::Adult, 40),
                    original(DatasetKind::German, 40),
                    original(DatasetKind::Flare, 40),
                ];
                let cap = cap_kib * 1024;
                let session = SharedSession::new();
                session
                    .set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir).with_cap(cap)));
                for &i in &seq {
                    session
                        .evaluator_for(&pool[i], MetricConfig::default())
                        .unwrap();
                    // the evictable residency (prepared state minus the
                    // irreducible key arenas) honors the cap after every
                    // single insert
                    let stats = session.stats();
                    let resident: usize = stats
                        .entries
                        .iter()
                        .filter(|e| e.prepared)
                        .map(|e| {
                            e.approx_bytes - e.rows * e.attrs * std::mem::size_of::<Code>()
                        })
                        .sum();
                    prop_assert!(resident <= cap, "resident {resident} > cap {cap}");
                }
            }
        }
    }
}
