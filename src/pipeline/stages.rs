//! Job execution: the staged engine behind [`Session::run_with`], and the
//! event stream it emits.

use cdp_core::{
    evaluate_all, EvalCounts, Evolution, GenerationStats, IslandEvent, IslandModel, Nsga2,
    ObjectiveVector, ScatterPoint,
};
use cdp_dataset::{Attribute, Code, SubTable};
use cdp_privacy::PrivacyReport;

use super::job::{AuditSpec, OptimizerMode, ProtectionJob, SourceData};
use super::report::{BestProtection, Front, JobOutcome, JobReport};
use super::shared::{SessionStats, SharedSession};
use super::{PipelineError, Result};

/// Progress events emitted while a job executes.
///
/// One stream serves every consumer — CLI progress lines, bench telemetry,
/// the `cdp serve` push channel — instead of each re-wiring
/// [`Evolution::run_with`] by hand.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The data source resolved into a concrete table.
    SourceReady {
        /// Records in the original file.
        rows: usize,
        /// Attributes in the full table.
        attrs: usize,
        /// Number of protected attributes.
        protected: usize,
    },
    /// The fitness evaluator is bound to the original.
    EvaluatorReady {
        /// `true` when the session served a cached preparation instead of
        /// re-computing the original-side statistics.
        reused: bool,
    },
    /// Snapshot of the session's cache counters, taken right after the
    /// evaluator stage resolved (so `hits + misses` already includes this
    /// job's request).
    CacheStats(SessionStats),
    /// The initial population of protections is masked and ready.
    PopulationReady {
        /// Number of protections entering the run.
        size: usize,
    },
    /// One evolutionary iteration finished (forwarded from
    /// [`Evolution::run_with`]; scalar mode).
    Generation(GenerationStats),
    /// One NSGA-II generation finished and the population front moved
    /// (forwarded from [`Nsga2::run_with`]; NSGA-II mode).
    FrontAdvanced {
        /// Generation index, 1-based (0 is the initial population).
        generation: usize,
        /// Size of the population's non-dominated front.
        front_size: usize,
        /// Hypervolume of that front w.r.t. the objective set's
        /// reference point (100 on every axis).
        hypervolume: f64,
        /// Per-objective minima over that front (leads with IL, DR).
        ideal: ObjectiveVector,
    },
    /// One island finished one scalar iteration (island-model jobs,
    /// `islands >= 2`; the per-island counterpart of
    /// [`JobEvent::Generation`]).
    IslandGeneration {
        /// Island index.
        island: usize,
        /// The iteration's population statistics, scoped to that island.
        stats: GenerationStats,
    },
    /// One island finished one NSGA-II generation (island-model jobs;
    /// the per-island counterpart of [`JobEvent::FrontAdvanced`]).
    IslandFront {
        /// Island index.
        island: usize,
        /// Generation index within that island, 1-based.
        generation: usize,
        /// Size of the island population's non-dominated front.
        front_size: usize,
        /// Hypervolume of that front w.r.t. the objective set's
        /// reference point (100 on every axis).
        hypervolume: f64,
        /// Per-objective minima over that island front.
        ideal: ObjectiveVector,
    },
    /// An island exported members to its ring neighbour at a migration
    /// barrier (island-model jobs with `migration_size > 0`).
    Migration {
        /// Generations the source island had completed at the barrier.
        generation: usize,
        /// Source island index.
        island: usize,
        /// Members exported.
        emigrants: usize,
    },
    /// The optimizer stage finished (either mode).
    EvolutionFinished {
        /// Iterations (scalar) or generations (NSGA-II) actually executed.
        iterations: usize,
        /// Fitness evaluations performed, split into full assessments and
        /// patch-based re-assessments (the incremental knobs' observable).
        evaluations: EvalCounts,
    },
    /// The privacy audit of the winner completed.
    AuditReady,
}

pub(crate) fn run_job<F: FnMut(&JobEvent)>(
    session: &SharedSession,
    job: &ProtectionJob,
    observer: &mut F,
) -> Result<JobReport> {
    let src = job.resolve_for_run()?;
    observer(&JobEvent::SourceReady {
        rows: src.table.n_rows(),
        attrs: src.table.n_attrs(),
        protected: src.protected.len(),
    });
    let original = src.original();

    // a job-level snapshot cache attaches to the session (and stays for
    // its later jobs); a job without one never detaches a session-level
    // config the caller installed directly
    if let Some(snap) = job.snapshot_cache() {
        session.set_snapshot_cache(Some(snap.clone()));
    }
    let (evaluator, reused) = session.evaluator_for(&original, job.metrics)?;
    observer(&JobEvent::EvaluatorReady { reused });
    observer(&JobEvent::CacheStats(session.stats()));

    let population = job.seed_population(&src)?;
    observer(&JobEvent::PopulationReady {
        size: population.len(),
    });
    let population_size = population.len();

    let (outcome, points, best) = match job.optimizer() {
        OptimizerMode::Scalar(evo_cfg) if job.iterations() == 0 => {
            // mask-and-score only: assess the population, pick the winner
            for (name, data) in &population {
                evaluator.prepared().check_compatible(data).map_err(|e| {
                    PipelineError::InvalidJob(format!("protection `{name}` incompatible: {e}"))
                })?;
            }
            let states = evaluate_all(&evaluator, &population, evo_cfg.parallel_init);
            let points: Vec<ScatterPoint> = population
                .iter()
                .zip(&states)
                .map(|((name, _), state)| {
                    ScatterPoint::from_pair(
                        name.clone(),
                        state.assessment.il(),
                        state.assessment.dr(),
                        state.assessment.score(evo_cfg.aggregator),
                    )
                })
                .collect();
            let (i, _) = points
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.score.partial_cmp(&b.score).expect("finite scores"))
                .expect("population validated non-empty");
            let best = BestProtection {
                name: population[i].0.clone(),
                data: population[i].1.clone(),
                assessment: states[i].assessment,
            };
            (JobOutcome::Scored, points, best)
        }
        OptimizerMode::Scalar(evo_cfg) if evo_cfg.islands.count > 1 => {
            let mut model = IslandModel::scalar(evaluator.clone(), evo_cfg)
                .with_named_population(population)?;
            if job.drop_fraction() > 0.0 {
                model = model.drop_best_fraction(job.drop_fraction())?;
            }
            let outcome = model.run_with(|e| observer(&island_event(e)));
            observer(&JobEvent::EvolutionFinished {
                iterations: outcome.iterations_run,
                evaluations: outcome.eval_counts,
            });
            let winner = outcome.population.best();
            let best = BestProtection {
                name: winner.name.clone(),
                data: winner.data.clone(),
                assessment: *winner.assessment(),
            };
            let points = outcome.final_points.clone();
            (JobOutcome::Scalar(outcome), points, best)
        }
        OptimizerMode::Scalar(evo_cfg) => {
            let mut evolution =
                Evolution::new(evaluator.clone(), evo_cfg).with_named_population(population)?;
            if job.drop_fraction() > 0.0 {
                evolution = evolution.drop_best_fraction(job.drop_fraction())?;
            }
            let outcome = evolution.run_with(|g| observer(&JobEvent::Generation(*g)));
            observer(&JobEvent::EvolutionFinished {
                iterations: outcome.iterations_run,
                evaluations: outcome.eval_counts,
            });
            let winner = outcome.population.best();
            let best = BestProtection {
                name: winner.name.clone(),
                data: winner.data.clone(),
                assessment: *winner.assessment(),
            };
            let points = outcome.final_points.clone();
            (JobOutcome::Scalar(outcome), points, best)
        }
        OptimizerMode::Nsga(cfg) if cfg.islands.count > 1 => {
            let nsga_outcome = IslandModel::nsga(evaluator.clone(), cfg)
                .with_objectives(job.objectives().clone())
                .with_named_population(population)?
                .run_with(|e| observer(&island_event(e)));
            let front = Front::from_outcome(nsga_outcome);
            observer(&JobEvent::EvolutionFinished {
                iterations: front.generations_run(),
                evaluations: front.eval_counts,
            });
            let best = front.knee().clone();
            let points = front.points.clone();
            (JobOutcome::Pareto(front), points, best)
        }
        OptimizerMode::Nsga(cfg) => {
            let nsga_outcome = Nsga2::new(evaluator.clone(), cfg)
                .with_objectives(job.objectives().clone())
                .with_named_population(population)?
                .run_with(|s| {
                    observer(&JobEvent::FrontAdvanced {
                        generation: s.generation,
                        front_size: s.front_size,
                        hypervolume: s.hypervolume,
                        ideal: s.ideal,
                    });
                });
            let front = Front::from_outcome(nsga_outcome);
            observer(&JobEvent::EvolutionFinished {
                iterations: front.generations_run(),
                evaluations: front.eval_counts,
            });
            let best = front.knee().clone();
            let points = front.points.clone();
            (JobOutcome::Pareto(front), points, best)
        }
    };

    let privacy = match job.audit_spec() {
        None => None,
        Some(spec) => {
            let mut report = audit_best(&src, spec, &best.data, &original)?;
            // the calibrated-PRAM budget is job metadata the audit cannot
            // recover from the masked file; surface it alongside the risk
            // figures
            report.epsilon = job.pram_epsilon();
            observer(&JobEvent::AuditReady);
            Some(report)
        }
    };

    Ok(JobReport {
        kind: src.kind,
        table: src.table,
        protected: src.protected,
        population_size,
        evaluator_reused: reused,
        outcome,
        points,
        best,
        privacy,
    })
}

/// Map a core island-scheduler event onto the job event stream.
fn island_event(e: &IslandEvent) -> JobEvent {
    match e {
        IslandEvent::Generation { island, stats } => JobEvent::IslandGeneration {
            island: *island,
            stats: *stats,
        },
        IslandEvent::Front { island, stats } => JobEvent::IslandFront {
            island: *island,
            generation: stats.generation,
            front_size: stats.front_size,
            hypervolume: stats.hypervolume,
            ideal: stats.ideal,
        },
        IslandEvent::Migration {
            generation,
            island,
            emigrants,
        } => JobEvent::Migration {
            generation: *generation,
            island: *island,
            emigrants: *emigrants,
        },
    }
}

/// Audit the winning protection: k-anonymity and re-identification risk
/// over the masked quasi-identifiers, plus diversity/closeness for each
/// named sensitive attribute.
fn audit_best(
    src: &SourceData,
    spec: &AuditSpec,
    best: &SubTable,
    original: &SubTable,
) -> Result<PrivacyReport> {
    let schema = src.table.schema();
    let mut sensitive: Vec<(&Attribute, &[Code])> = Vec::with_capacity(spec.sensitive.len());
    for name in &spec.sensitive {
        let j = schema.index_of(name).ok_or_else(|| {
            PipelineError::InvalidJob(format!(
                "sensitive attribute `{name}` not in the table (header: {})",
                schema
                    .attrs()
                    .iter()
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        sensitive.push((schema.attr(j), src.table.column(j)));
    }
    Ok(cdp_privacy::report::audit(
        best,
        Some(original),
        &sensitive,
    )?)
}
