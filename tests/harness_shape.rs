//! Integration tests of the experiment harness: every paper artifact is
//! regenerable and produces well-formed output (run here at smoke scale).

use cdp::dataset::generators::DatasetKind;
use cdp::metrics::ScoreAggregator;
use cdp_bench::{figure_spec, measure_timing, ExperimentConfig, Harness, ALL_FIGURES};

fn smoke_harness(tag: &str) -> Harness {
    Harness::new(ExperimentConfig {
        records: Some(60),
        iterations: 10,
        seed: 3,
        out_dir: std::env::temp_dir().join(format!("cdp_harness_{tag}")),
    })
}

#[test]
fn every_figure_id_resolves_and_pairs_with_a_run() {
    for id in ALL_FIGURES {
        let spec = figure_spec(id).expect("figure id");
        assert_eq!(spec.id, id);
    }
}

#[test]
fn scatter_csv_has_initial_and_final_phases() {
    let mut h = smoke_harness("scatter");
    let fig = h.figure(1).unwrap();
    let text = std::fs::read_to_string(&fig.csv_path).unwrap();
    assert!(text.starts_with("phase,protection,il,dr,score"));
    assert!(text.contains("initial,"));
    assert!(text.contains("final,"));
    // Adult's paper population = 86 protections, both phases present
    let lines = text.lines().count() - 1;
    assert_eq!(lines, 2 * 86);
    std::fs::remove_dir_all(h.config().out_dir.clone()).ok();
}

#[test]
fn evolution_csv_covers_every_iteration() {
    let mut h = smoke_harness("evolution");
    let fig = h.figure(2).unwrap();
    let text = std::fs::read_to_string(&fig.csv_path).unwrap();
    // header + initial snapshot + 10 iterations
    assert_eq!(text.lines().count(), 1 + 1 + 10);
    let last = text.lines().last().unwrap();
    assert!(last.starts_with("10,"));
    std::fs::remove_dir_all(h.config().out_dir.clone()).ok();
}

#[test]
fn robustness_figures_shrink_the_population() {
    let mut h = smoke_harness("robust");
    let full = h.figure(15).unwrap(); // Flare Eq.2, full population
    let trunc = h.figure(17).unwrap(); // same but best 5% removed
    let count = |p: &std::path::Path| {
        std::fs::read_to_string(p)
            .unwrap()
            .lines()
            .filter(|l| l.starts_with("initial,"))
            .count()
    };
    assert!(count(&trunc.csv_path) < count(&full.csv_path));
    std::fs::remove_dir_all(h.config().out_dir.clone()).ok();
}

#[test]
fn summaries_report_non_regressing_scores() {
    let mut h = smoke_harness("summary");
    for agg in [ScoreAggregator::Mean, ScoreAggregator::Max] {
        for row in h.summary(agg) {
            let s = row.summary;
            assert!(
                s.final_max <= s.initial_max + 1e-9,
                "{}",
                row.dataset.name()
            );
            assert!(
                s.final_min <= s.initial_min + 1e-9,
                "{}",
                row.dataset.name()
            );
            assert!(s.improvement_max() >= -1e-9);
        }
    }
    std::fs::remove_dir_all(h.config().out_dir.clone()).ok();
}

#[test]
fn timing_reproduces_the_papers_structure() {
    // Wall-clock assertions run alongside the whole parallel test suite, so
    // thresholds are deliberately loose; the tight version of this check is
    // the `generation_cost` Criterion bench and the `reproduce timing`
    // target, both run without contention.
    // A single measurement can land in a contention spike (the suite runs
    // on few cores); re-measure a couple of times before declaring failure.
    let mut t = measure_timing(DatasetKind::Adult, Some(120), 8, 1);
    for retry in 0..3 {
        if t.fitness_share_mutation() > 0.5 && t.crossover_to_mutation_ratio() > 1.0 {
            break;
        }
        t = measure_timing(DatasetKind::Adult, Some(120), 8 + retry, 1);
    }
    assert!(
        t.fitness_share_mutation() > 0.5,
        "fitness share {:.2}",
        t.fitness_share_mutation()
    );
    assert!(
        t.crossover_to_mutation_ratio() > 1.0,
        "ratio {:.2}",
        t.crossover_to_mutation_ratio()
    );
    let md = t.to_markdown();
    assert!(md.contains("120.34 s")); // the paper column is present
}
