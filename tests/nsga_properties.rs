//! Property-based tests for the NSGA-II primitives: non-dominated sorting,
//! crowding distance, and the 2-D hypervolume indicator.

use cdp::core::nsga::{crowding_distance, hypervolume, non_dominated_sort};
use proptest::prelude::*;

fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fronts_partition_the_points(points in arb_points()) {
        let fronts = non_dominated_sort(&points);
        let mut seen: Vec<usize> = fronts.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..points.len()).collect();
        prop_assert_eq!(seen, expected, "every index in exactly one front");
    }

    #[test]
    fn each_front_is_mutually_nondominated(points in arb_points()) {
        let fronts = non_dominated_sort(&points);
        for front in &fronts {
            for &i in front {
                for &j in front {
                    prop_assert!(
                        !dominates(points[i], points[j]),
                        "front member {i} dominates member {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn later_front_members_are_dominated_by_the_previous_front(points in arb_points()) {
        let fronts = non_dominated_sort(&points);
        for r in 1..fronts.len() {
            for &j in &fronts[r] {
                prop_assert!(
                    fronts[r - 1].iter().any(|&i| dominates(points[i], points[j])),
                    "front {r} member {j} not dominated by front {}",
                    r - 1
                );
            }
        }
    }

    #[test]
    fn front_zero_is_globally_nondominated(points in arb_points()) {
        let fronts = non_dominated_sort(&points);
        for &i in &fronts[0] {
            prop_assert!(
                !points.iter().any(|&p| dominates(p, points[i])),
                "front-0 member {i} is dominated"
            );
        }
        // and everything outside front 0 is dominated by something
        for front in fronts.iter().skip(1) {
            for &j in front {
                prop_assert!(points.iter().any(|&p| dominates(p, points[j])));
            }
        }
    }

    #[test]
    fn hypervolume_is_monotone_under_point_addition(
        points in arb_points(),
        extra in (0.0f64..100.0, 0.0f64..100.0),
    ) {
        let reference = (100.0, 100.0);
        let base = hypervolume(&points, reference);
        let mut more = points.clone();
        more.push(extra);
        let grown = hypervolume(&more, reference);
        prop_assert!(grown >= base - 1e-9, "adding a point shrank HV: {base} -> {grown}");
    }

    #[test]
    fn hypervolume_is_order_invariant(points in arb_points(), seed in 0u64..1000) {
        let reference = (100.0, 100.0);
        let base = hypervolume(&points, reference);
        // deterministic pseudo-shuffle
        let mut shuffled = points.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        let after = hypervolume(&shuffled, reference);
        prop_assert!((base - after).abs() < 1e-9);
    }

    #[test]
    fn hypervolume_bounded_by_reference_box(points in arb_points()) {
        let hv = hypervolume(&points, (100.0, 100.0));
        prop_assert!((0.0..=10_000.0 + 1e-9).contains(&hv));
    }

    #[test]
    fn crowding_has_at_least_two_infinite_entries(points in arb_points()) {
        let front: Vec<usize> = (0..points.len()).collect();
        let d = crowding_distance(&points, &front);
        prop_assert_eq!(d.len(), points.len());
        let infinite = d.iter().filter(|x| x.is_infinite()).count();
        prop_assert!(infinite >= usize::min(2, points.len()));
        for x in &d {
            prop_assert!(*x >= 0.0);
        }
    }
}
