//! Cross-crate integration: the full paper pipeline at reduced scale on
//! every dataset, plus the publish/export path.

use std::sync::Arc;

use cdp::dataset::io::{read_table, write_table, SchemaSource};
use cdp::prelude::*;

fn mini_run(kind: DatasetKind, aggregator: ScoreAggregator, seed: u64) -> EvolutionOutcome {
    let ds = kind.generate(&GeneratorConfig::seeded(seed).with_records(80));
    let population = build_population(&ds, &SuiteConfig::small(), seed).unwrap();
    let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let config = EvoConfig::builder()
        .iterations(30)
        .aggregator(aggregator)
        .seed(seed)
        .build();
    Evolution::new(evaluator, config)
        .with_named_population(population)
        .unwrap()
        .run()
}

#[test]
fn all_four_datasets_run_both_fitness_functions() {
    for kind in DatasetKind::all() {
        for agg in [ScoreAggregator::Mean, ScoreAggregator::Max] {
            let outcome = mini_run(kind, agg, 1);
            let s = outcome.summary();
            assert!(
                s.final_mean <= s.initial_mean + 1e-9,
                "{} / {} regressed",
                kind.name(),
                agg.name()
            );
            assert!(s.final_min > 0.0, "scores are meaningful");
            assert!(s.initial_max <= 100.0, "scores are bounded");
        }
    }
}

#[test]
fn final_individuals_remain_valid_protected_files() {
    let outcome = mini_run(DatasetKind::Housing, ScoreAggregator::Max, 2);
    for ind in outcome.population.members() {
        ind.data.validate().unwrap();
    }
}

#[test]
fn best_protection_exports_and_reimports() {
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(3).with_records(80));
    let population = build_population(&ds, &SuiteConfig::small(), 3).unwrap();
    let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let config = EvoConfig::builder().iterations(20).seed(3).build();
    let outcome = Evolution::new(evaluator, config)
        .with_named_population(population)
        .unwrap()
        .run();

    let published = ds
        .table
        .with_subtable(&outcome.population.best().data)
        .unwrap();
    let mut buf = Vec::new();
    write_table(&published, &mut buf).unwrap();
    let back = read_table(
        SchemaSource::Fixed(Arc::clone(published.schema())),
        buf.as_slice(),
    )
    .unwrap();
    assert_eq!(back.n_rows(), published.n_rows());
    for j in 0..published.n_attrs() {
        assert_eq!(back.column(j), published.column(j));
    }
}

#[test]
fn evolution_improves_over_pure_initial_population() {
    // the point of the paper: post-masking optimization beats the best
    // off-the-shelf protection on at least some run
    let outcome = mini_run(DatasetKind::Flare, ScoreAggregator::Max, 4);
    let initial_best = outcome.initial_best().score;
    let final_best = outcome.final_best().score;
    assert!(final_best <= initial_best + 1e-9);
}

#[test]
fn unbalanced_protections_penalized_only_by_max() {
    // construct an extreme protection: identity (IL 0, DR high)
    let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(5).with_records(80));
    let original = ds.protected_subtable();
    let evaluator = Evaluator::new(&original, MetricConfig::default()).unwrap();
    let a = evaluator.evaluate(&original);
    let eq1 = a.score(ScoreAggregator::Mean);
    let eq2 = a.score(ScoreAggregator::Max);
    assert!(eq2 > eq1, "max must punish the unbalanced identity masking");
    assert!((eq2 - a.dr()).abs() < 1e-12);
}

#[test]
fn protection_job_reproduces_the_hand_wired_run_exactly() {
    // the pipeline is a re-packaging, not a re-implementation: same seeds
    // -> same RNG streams -> bit-identical outcome. Incremental evaluation
    // is pinned off on *both* sides, so this stays a pure re-packaging
    // check whatever the delta-engine defaults are (the default-on path is
    // covered by default_incremental_run_publishes_the_same_winner).
    let hand = {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(6).with_records(80));
        let population = build_population(&ds, &SuiteConfig::small(), 6).unwrap();
        let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
        let config = EvoConfig::builder()
            .iterations(30)
            .aggregator(ScoreAggregator::Max)
            .incremental_mutation(false)
            .incremental_crossover(false)
            .seed(6)
            .build();
        Evolution::new(evaluator, config)
            .with_named_population(population)
            .unwrap()
            .run()
    };
    let job = ProtectionJob::builder()
        .dataset(DatasetKind::German)
        .records(80)
        .suite_small()
        .aggregator(ScoreAggregator::Max)
        .iterations(30)
        .incremental_mutation(false)
        .incremental_crossover(false)
        .seed(6)
        .build()
        .unwrap();
    let report = job.run().unwrap();
    let outcome = report.outcome.into_scalar().expect("evolved");
    assert_eq!(outcome.summary(), hand.summary());
    assert_eq!(outcome.iterations_run, hand.iterations_run);
    assert_eq!(
        outcome.population.best().data,
        hand.population.best().data,
        "winning protected file must be identical"
    );
    assert_eq!(report.best.name, hand.population.best().name);
}

#[test]
fn nsga_job_reproduces_the_hand_wired_run_exactly() {
    // the nsga job mode is a re-packaging of `Nsga2`, not a
    // re-implementation: same seeds -> same RNG streams -> bit-identical
    // fronts, trajectory and evaluation counts
    use cdp::core::nsga::{Nsga2, NsgaConfig};
    let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(6).with_records(80));
    let population = build_population(&ds, &SuiteConfig::small(), 6).unwrap();
    let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let hand = Nsga2::new(
        evaluator,
        NsgaConfig {
            generations: 12,
            seed: 6,
            // pinned off on both sides — see the scalar mirror above
            incremental: false,
            ..NsgaConfig::default()
        },
    )
    .with_named_population(population)
    .unwrap()
    .run();

    let job = ProtectionJob::builder()
        .dataset(DatasetKind::German)
        .records(80)
        .suite_small()
        .nsga()
        .iterations(12)
        .incremental_crossover(false)
        .seed(6)
        .build()
        .unwrap();
    let report = job.run().unwrap();
    let front = report.front().expect("nsga job");

    assert_eq!(front.hypervolume, hand.hypervolume_series);
    assert_eq!(front.evaluations, hand.evaluations);
    for (ours, theirs) in [
        (&front.points, &hand.front),
        (&front.initial, &hand.initial_front),
        (&front.archive, &hand.archive_front),
    ] {
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(theirs.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.il, b.il);
            assert_eq!(a.dr, b.dr);
        }
    }
    // front members carry the exact protected files the hand-wired run ends
    // with, and the published winner is the knee point among them
    assert_eq!(front.members.len(), hand.front_members.len());
    for (a, b) in front.members.iter().zip(hand.front_members.iter()) {
        assert_eq!(a.data, b.data, "front member files must be identical");
    }
    assert_eq!(report.best.data, front.knee().data);
    let published = report.published_best().unwrap();
    for (k, &j) in report.protected.iter().enumerate() {
        assert_eq!(published.column(j), report.best.data.column(k));
    }
}

#[test]
fn session_shares_one_preparation_across_optimizer_modes() {
    // acceptance: a scalar job followed by an nsga job against the same
    // original must reuse the cached evaluator preparation
    let scalar = ProtectionJob::builder()
        .dataset(DatasetKind::Adult)
        .records(80)
        .iterations(10)
        .seed(3)
        .build()
        .unwrap();
    let nsga = ProtectionJob::builder()
        .dataset(DatasetKind::Adult)
        .records(80)
        .nsga()
        .iterations(5)
        .seed(3)
        .build()
        .unwrap();
    let mut session = Session::new();
    let a = session.run(&scalar).unwrap();
    let b = session.run(&nsga).unwrap();
    assert!(!a.evaluator_reused);
    assert!(
        b.evaluator_reused,
        "nsga job must hit the scalar job's cache"
    );
    assert_eq!(session.preparations(), 1, "one original, one preparation");

    // and the cached preparation changes nothing: a fresh session produces
    // the identical front
    let fresh = Session::new().run(&nsga).unwrap();
    assert_eq!(
        fresh.front().unwrap().hypervolume,
        b.front().unwrap().hypervolume
    );
    assert_eq!(fresh.best.data, b.best.data);
}

#[test]
fn session_skips_evaluator_re_preparation_across_jobs() {
    // acceptance: a second job against the same original must not prepare
    // the evaluator again, observable via the event hook and the counter
    let job = |iters: usize| {
        ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .records(80)
            .suite_small()
            .iterations(iters)
            .seed(3)
            .build()
            .unwrap()
    };
    let mut session = Session::new();
    let mut reused_flags = Vec::new();
    let observe = |flags: &mut Vec<bool>, e: &JobEvent| {
        if let JobEvent::EvaluatorReady { reused } = e {
            flags.push(*reused);
        }
    };
    let first = session
        .run_with(&job(10), |e| observe(&mut reused_flags, e))
        .unwrap();
    let second = session
        .run_with(&job(20), |e| observe(&mut reused_flags, e))
        .unwrap();
    assert_eq!(reused_flags, [false, true]);
    assert!(!first.evaluator_reused);
    assert!(second.evaluator_reused);
    assert_eq!(session.preparations(), 1, "one original, one preparation");

    // and the cached preparation changes nothing about the results: a
    // fresh session produces the identical outcome
    let fresh = Session::new().run(&job(20)).unwrap();
    assert_eq!(fresh.summary().unwrap(), second.summary().unwrap());
}

#[test]
fn job_report_publishes_and_audits_the_winner() {
    let report = ProtectionJob::builder()
        .dataset(DatasetKind::Housing)
        .records(80)
        .suite_small()
        .iterations(15)
        .seed(8)
        .audit()
        .build()
        .unwrap()
        .run()
        .unwrap();
    // published table: full schema, winner's columns substituted
    let published = report.published_best().unwrap();
    assert_eq!(published.n_rows(), 80);
    assert_eq!(published.n_attrs(), report.table.n_attrs());
    for (k, &j) in report.protected.iter().enumerate() {
        assert_eq!(published.column(j), report.best.data.column(k));
    }
    // audit: k-anonymity + prosecutor always, journalist vs the original
    let privacy = report.privacy.expect("audit enabled");
    assert!(privacy.k_anonymity.k >= 1);
    assert!(privacy.journalist.is_some());
    assert!(privacy.sensitive.is_empty(), "no sensitive attrs named");
}

#[test]
fn facade_prelude_covers_the_whole_pipeline() {
    // compile-time check that the prelude exposes every type the
    // quickstart needs, and a behavioural smoke test on top
    let ds: Dataset = DatasetKind::Adult.generate(&GeneratorConfig::seeded(6).with_records(60));
    let pop: Vec<cdp::sdc::NamedProtection> =
        build_population(&ds, &SuiteConfig::small(), 6).unwrap();
    let ev: Evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let cfg: EvoConfig = EvoConfig::builder().iterations(5).build();
    let out: EvolutionOutcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    let _: &Population = &out.population;
    let _: &Individual = out.population.best();
    assert_eq!(out.iterations_run, 5);
}

#[test]
fn incremental_job_reports_the_eval_split_and_matches_the_full_run() {
    // the incremental knob's observable flows through the whole pipeline:
    // EvolutionFinished carries the full/incremental assessment split, and
    // the winner is bit-identical to the all-full run's
    let job = |inc: bool| {
        ProtectionJob::builder()
            .dataset(DatasetKind::Adult)
            .records(80)
            .suite_small()
            .iterations(40)
            .incremental_mutation(inc)
            .incremental_crossover(inc)
            .seed(6)
            .build()
            .unwrap()
    };
    let counts_of = |job: &ProtectionJob| {
        let mut counts = None;
        let report = Session::new()
            .run_with(job, |e| {
                if let JobEvent::EvolutionFinished { evaluations, .. } = e {
                    counts = Some(*evaluations);
                }
            })
            .unwrap();
        (counts.expect("evolution ran"), report)
    };
    let (full_counts, full_report) = counts_of(&job(false));
    let (inc_counts, inc_report) = counts_of(&job(true));
    assert_eq!(full_counts.incremental, 0);
    assert!(inc_counts.incremental > 0);
    assert!(
        inc_counts.full * 2 <= full_counts.full,
        "incremental job must at least halve the full assessments: {} vs {}",
        inc_counts.full,
        full_counts.full
    );
    // the report mirrors the event stream
    assert_eq!(inc_report.scalar_outcome().unwrap().eval_counts, inc_counts);
    // exact delta evaluation: zero winner drift, bit for bit
    let (a, b) = (&full_report.best.assessment, &inc_report.best.assessment);
    assert_eq!(a, b);
    assert_eq!(full_report.best.data, inc_report.best.data);
}

#[test]
fn default_incremental_run_publishes_the_same_winner_as_inc_off() {
    // the defaults equivalence behind the flip: an untouched builder now
    // runs the exact delta engine, and must publish the identical winner
    // (same protected file, same assessment) as an explicit inc=off run —
    // in both optimizer modes
    let scalar = |inc_off: bool| {
        let mut b = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(80)
            .suite_small()
            .iterations(35)
            .seed(11);
        if inc_off {
            b = b.incremental_mutation(false).incremental_crossover(false);
        }
        b.build().unwrap().run().unwrap()
    };
    let default_run = scalar(false);
    let off_run = scalar(true);
    // the default really is the incremental path …
    let default_counts = default_run.scalar_outcome().unwrap().eval_counts;
    assert!(default_counts.incremental > 0, "defaults must be on");
    assert_eq!(off_run.scalar_outcome().unwrap().eval_counts.incremental, 0);
    // … and it changes nothing observable
    assert_eq!(default_run.best.assessment, off_run.best.assessment);
    assert_eq!(
        default_run.best.data, off_run.best.data,
        "published winner must be identical"
    );
    assert_eq!(
        default_run.scalar_outcome().unwrap().summary(),
        off_run.scalar_outcome().unwrap().summary()
    );

    let nsga = |inc_off: bool| {
        let mut b = ProtectionJob::builder()
            .dataset(DatasetKind::German)
            .records(80)
            .suite_small()
            .nsga()
            .iterations(10)
            .seed(11);
        if inc_off {
            b = b.incremental_crossover(false);
        }
        b.build().unwrap().run().unwrap()
    };
    let default_front = nsga(false);
    let off_front = nsga(true);
    assert!(
        default_front.front().unwrap().eval_counts.incremental > 0,
        "nsga defaults must be on"
    );
    assert_eq!(off_front.front().unwrap().eval_counts.incremental, 0);
    assert_eq!(default_front.best.assessment, off_front.best.assessment);
    assert_eq!(default_front.best.data, off_front.best.data);
    assert_eq!(
        default_front.front().unwrap().hypervolume,
        off_front.front().unwrap().hypervolume
    );
}
