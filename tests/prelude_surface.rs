//! API-surface smoke test: every name the prelude promises must resolve,
//! and the pipeline types must be constructible — guarding the facade's
//! re-exports against accidental breakage (a rename or dropped `pub use`
//! fails this file at compile time).

// Each prelude name imported explicitly: a missing re-export is a compile
// error pointing at the exact line.
#[allow(unused_imports)]
use cdp::prelude::{
    build_population, AttrKind, Attribute, BestProtection, Code, DataSource, Dataset, DatasetKind,
    DrBreakdown, EvalCounts, EvoConfig, Evolution, EvolutionOutcome, Front, GeneratorConfig,
    Hierarchy, IlBreakdown, Individual, JobEvent, JobOutcome, JobReport, MetricConfig,
    OptimizerMode, PipelineError, Population, PopulationSpec, ProtectionJob, ProtectionMethod,
    Recoder, ReplacementPolicy, Schema, ScoreAggregator, SelectionWeighting, Session, SessionStats,
    SharedSession, StopCondition, SubTable, SuiteConfig, SuiteKind, Table,
};
use cdp::prelude::{Assessment, CostKind, Evaluator, LatticeSearch, PrivacyReport};

/// The facade's five crate aliases stay addressable.
#[test]
fn crate_aliases_resolve() {
    let _: fn(&cdp::dataset::SubTable) -> f64 = cdp::dataset::stats::uniqueness;
    let _: cdp::metrics::ScoreAggregator = cdp::metrics::ScoreAggregator::Max;
    let _: cdp::core::OperatorKind = cdp::core::OperatorKind::Mutation;
    let _: cdp::sdc::PramMode = cdp::sdc::PramMode::Invariant;
    let _: cdp::privacy::CostKind = cdp::privacy::CostKind::Discernibility;
    let _: fn() -> cdp::pipeline::ProtectionJobBuilder = cdp::pipeline::ProtectionJob::builder;
}

/// Every pipeline type on the prelude is usable, not just importable.
#[test]
fn pipeline_types_are_usable_from_the_prelude() {
    let job: ProtectionJob = ProtectionJob::builder()
        .dataset(DatasetKind::Adult)
        .records(40)
        .suite_kind(SuiteKind::Small)
        .aggregator(ScoreAggregator::Max)
        .iterations(2)
        .seed(1)
        .build()
        .expect("valid job");
    let _: &DataSource = job.source();
    let _: &PopulationSpec = job.population();

    let mut session: Session = Session::new();
    let mut events: Vec<JobEvent> = Vec::new();
    let report: JobReport = session
        .run_with(&job, |e| events.push(e.clone()))
        .expect("job runs");
    let best: &BestProtection = &report.best;
    let assessment: &Assessment = &best.assessment;
    assert!(assessment.il() >= 0.0);
    assert!(!events.is_empty());

    // the mode-aware surface: OptimizerMode on the job, JobOutcome/Front
    // on the report
    let mode: OptimizerMode = job.optimizer();
    assert!(matches!(mode, OptimizerMode::Scalar(_)));
    let outcome: &JobOutcome = &report.outcome;
    assert!(outcome.scalar().is_some());
    let nsga_job = ProtectionJob::builder()
        .dataset(DatasetKind::Adult)
        .records(40)
        .nsga()
        .iterations(2)
        .seed(1)
        .build()
        .expect("valid nsga job");
    let nsga_report = session.run(&nsga_job).expect("nsga job runs");
    assert_eq!(session.preparations(), 1, "modes share the evaluator cache");
    let front: &Front = nsga_report.front().expect("front");
    assert!(!front.members.is_empty());

    // the concurrency-safe surface: SharedSession shares the same cache,
    // SessionStats reports it (both on the prelude since `cdp serve`)
    let shared: SharedSession = session.shared();
    let stats: SessionStats = shared.stats();
    assert_eq!(stats.preparations, 1);
    assert_eq!(stats, session.stats());
    let rerun = shared.run(&job).expect("shared rerun");
    assert!(rerun.evaluator_reused, "clone sees the session cache");
    assert!(shared.stats().hit_rate().expect("requests seen") > 0.0);

    let err: PipelineError = ProtectionJob::builder().build().unwrap_err();
    assert!(err.to_string().contains("invalid job"));
}

/// The free-form (pre-pipeline) surface stays intact for existing code.
#[test]
fn legacy_entry_points_remain_public() {
    let ds: Dataset = DatasetKind::German.generate(&GeneratorConfig::seeded(2).with_records(40));
    let pop = build_population(&ds, &SuiteConfig::small(), 2).expect("sweep");
    let evaluator: Evaluator =
        Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let cfg: EvoConfig = EvoConfig::builder().iterations(2).seed(2).build();
    let outcome: EvolutionOutcome = Evolution::new(evaluator, cfg)
        .with_named_population(pop)
        .expect("compatible")
        .run();
    assert_eq!(outcome.iterations_run, 2);
    let counts: EvalCounts = outcome.eval_counts;
    assert!(counts.full >= 1);

    // the delta-evaluation surface of cdp::metrics
    let _: fn(usize, usize, Code) -> cdp::metrics::Patch = cdp::metrics::Patch::cell;
    let _: fn(usize, usize, Vec<Code>) -> cdp::metrics::Patch = cdp::metrics::Patch::flat_range;

    // privacy surface
    let sub: SubTable = ds.protected_subtable();
    let recoder: Recoder =
        Recoder::new(&sub, ds.protected_hierarchies()).expect("nested hierarchies");
    let search: LatticeSearch = LatticeSearch::new(&sub, &recoder);
    let _: Result<_, _> = search.optimal(2, CostKind::Discernibility);
    let report: PrivacyReport =
        cdp::privacy::report::audit(&sub, Some(&sub), &[]).expect("audit runs");
    assert!(report.k_anonymity.k >= 1);
}
