//! Cross-crate integration: the privacy-model layer working against the
//! dataset generators, the SDC methods, the metrics evaluator, and both
//! optimizers — the full audit pipeline an agency would run.

use cdp::core::nsga::{Nsga2, NsgaConfig};
use cdp::prelude::*;
use cdp::privacy::{models, report, risk, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn adult(records: usize, seed: u64) -> Dataset {
    DatasetKind::Adult.generate(&GeneratorConfig::seeded(seed).with_records(records))
}

#[test]
fn lattice_recodings_trade_il_for_dr_under_paper_measures() {
    // the identity is the IL = 0 / maximum-DR extreme; every k-anonymous
    // recoding must pay IL > 0 and, for the strong k, buy DR well below
    // the identity's. (IL across *different* optimal nodes is not monotone
    // in k — the search minimizes imprecision, not the paper's IL — so only
    // the endpoints are asserted hard.)
    let ds = adult(200, 1);
    let sub = ds.protected_subtable();
    let evaluator = Evaluator::new(&sub, MetricConfig::default()).unwrap();
    let recoder = Recoder::new(&sub, ds.protected_hierarchies()).unwrap();
    let search = LatticeSearch::new(&sub, &recoder);

    let identity = evaluator.assess(&sub);
    assert!(identity.assessment.il() < 1e-9);
    let identity_dr = identity.assessment.dr();

    let mut dr_of_strongest = f64::NAN;
    for k in [2usize, 5, 20] {
        let found = search.optimal(k, CostKind::Imprecision).unwrap();
        assert!(found.achieved_k >= k);
        let masked = recoder.apply(&sub, &found.node).unwrap();
        let state = evaluator.assess(&masked);
        assert!(
            state.assessment.il() > 0.0,
            "k = {k} recoding must cost information"
        );
        assert!(state.assessment.dr() <= identity_dr + 1e-9);
        dr_of_strongest = state.assessment.dr();
    }
    assert!(
        dr_of_strongest < identity_dr * 0.8,
        "k = 20 should cut DR well below the identity's \
         ({dr_of_strongest:.2} vs {identity_dr:.2})"
    );
}

#[test]
fn global_recoding_reduces_prosecutor_risk() {
    // global recoding is a per-value map, so the masked partition is a
    // coarsening of the original one: classes can only merge, and the
    // expected number of correct re-identifications (= class count) can
    // only fall. (Record-wise methods like univariate microaggregation do
    // NOT carry this guarantee — they can create novel combinations.)
    let ds = adult(300, 2);
    let sub = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    let ctx = cdp::sdc::MethodContext {
        hierarchies: &hierarchies,
    };
    let before = risk::prosecutor_risk(&Partition::of_subtable(&sub).unwrap());

    let mut rng = StdRng::seed_from_u64(2);
    let masked = cdp::sdc::GlobalRecoding::uniform(1)
        .protect(&sub, &ctx, &mut rng)
        .unwrap();
    let after = risk::prosecutor_risk(&Partition::of_subtable(&masked).unwrap());
    assert!(
        after.expected_reidentifications <= before.expected_reidentifications,
        "global recoding must not increase expected re-identifications \
         ({} -> {})",
        before.expected_reidentifications,
        after.expected_reidentifications
    );
    assert!(after.mean <= before.mean + 1e-12);
}

#[test]
fn ga_winner_passes_a_full_privacy_audit() {
    let ds = adult(150, 3);
    let population = build_population(&ds, &SuiteConfig::small(), 3).unwrap();
    let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let outcome = Evolution::new(
        evaluator,
        EvoConfig::builder()
            .iterations(30)
            .aggregator(ScoreAggregator::Max)
            .seed(3)
            .build(),
    )
    .with_named_population(population)
    .unwrap()
    .run();

    let best = outcome.population.best();
    let original = ds.protected_subtable();
    // audit diversity of a non-protected attribute within masked classes
    let sens_idx = 0; // AGE band: not among Adult's protected attributes
    assert!(!ds.protected.contains(&sens_idx));
    let sens_attr = ds.table.schema().attr(sens_idx);
    let sens_col = ds.table.column(sens_idx);

    let audit = report::audit(&best.data, Some(&original), &[(sens_attr, sens_col)]).unwrap();
    assert!(audit.k_anonymity.k >= 1);
    assert!(audit.prosecutor.max <= 1.0);
    assert!(audit.journalist.is_some());
    assert_eq!(audit.sensitive.len(), 1);
    let text = audit.to_string();
    assert!(text.contains("k-anonymity"));
    assert!(text.contains(sens_attr.name()));
}

#[test]
fn nsga_front_members_are_auditable_and_in_range() {
    let ds = adult(120, 4);
    let population = build_population(&ds, &SuiteConfig::small(), 4).unwrap();
    let evaluator = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let outcome = Nsga2::new(
        evaluator,
        NsgaConfig {
            generations: 5,
            seed: 4,
            ..NsgaConfig::default()
        },
    )
    .with_named_population(population)
    .unwrap()
    .run();
    assert!(!outcome.front.is_empty());
    for p in &outcome.front {
        assert!((0.0..=100.0).contains(&p.il), "IL in range: {}", p.il);
        assert!((0.0..=100.0).contains(&p.dr), "DR in range: {}", p.dr);
    }
    // the archive dominates-or-equals the final population front
    let archive_hv = {
        let objs: Vec<(f64, f64)> = outcome.archive_front.iter().map(|p| (p.il, p.dr)).collect();
        cdp::core::nsga::hypervolume(&objs, cdp::core::nsga::HV_REFERENCE)
    };
    let front_hv = {
        let objs: Vec<(f64, f64)> = outcome.front.iter().map(|p| (p.il, p.dr)).collect();
        cdp::core::nsga::hypervolume(&objs, cdp::core::nsga::HV_REFERENCE)
    };
    assert!(archive_hv >= front_hv - 1e-9);
}

#[test]
fn local_suppression_raises_k_where_lattice_cannot() {
    // identity-only hierarchies make the lattice useless; local suppression
    // still reaches k by folding rare combinations into the mode
    let ds = adult(200, 5);
    let sub = ds.protected_subtable();
    let hs: Vec<&Hierarchy> = vec![];
    let ctx = cdp::sdc::MethodContext { hierarchies: &hs };
    let mut rng = StdRng::seed_from_u64(5);
    let masked = cdp::sdc::LocalSuppression { min_class_size: 4 }
        .protect(&sub, &ctx, &mut rng)
        .unwrap();
    let before = models::k_anonymity(&Partition::of_subtable(&sub).unwrap());
    let after = models::k_anonymity(&Partition::of_subtable(&masked).unwrap());
    assert!(after.singletons <= before.singletons);
}
