//! Property-based tests of the cross-crate invariants.
//!
//! Random instances are generated from `(shape, seed)` tuples via seeded
//! RNGs, so proptest shrinks over compact parameters while the instances
//! stay arbitrary.

use std::sync::Arc;

use cdp::core::operators::{crossover, mutate};
use cdp::dataset::{AttrKind, Attribute, Code, Hierarchy, Schema, SubTable};
use cdp::metrics::{Evaluator, MetricConfig, Patch, PatchCell, ScoreAggregator};
use cdp::sdc::{MethodContext, Pram, PramMode, ProtectionMethod, RankSwapping};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random sub-table: `a` attributes (mixed kinds), `n` rows.
fn random_subtable(a: usize, n: usize, seed: u64) -> SubTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let attrs: Vec<Attribute> = (0..a)
        .map(|i| {
            let cats = rng.gen_range(2..=8);
            if rng.gen_bool(0.5) {
                Attribute::ordinal(format!("A{i}"), cats)
            } else {
                Attribute::nominal(format!("A{i}"), cats)
            }
        })
        .collect();
    let schema = Arc::new(Schema::new(attrs).unwrap());
    let columns: Vec<Vec<Code>> = (0..a)
        .map(|k| {
            let c = schema.attr(k).n_categories() as Code;
            (0..n).map(|_| rng.gen_range(0..c)).collect()
        })
        .collect();
    SubTable::new(schema, (0..a).collect(), columns).unwrap()
}

/// A random masking of `sub`: each cell re-drawn with probability ~0.4.
fn random_masking(sub: &SubTable, seed: u64) -> SubTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut m = sub.clone();
    for k in 0..m.n_attrs() {
        let c = m.attr(k).n_categories() as Code;
        for r in 0..m.n_rows() {
            if rng.gen_bool(0.4) {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mutation_changes_exactly_one_cell_and_stays_valid(
        a in 2usize..=4, n in 8usize..=30, seed in any::<u64>()
    ) {
        let original = random_subtable(a, n, seed);
        let mut child = original.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        if let Some(mu) = mutate(&mut child, &mut rng) {
            prop_assert_eq!(original.hamming(&child), 1);
            prop_assert!(child.validate().is_ok());
            prop_assert_ne!(mu.old, mu.new);
        }
    }

    #[test]
    fn crossover_preserves_positionwise_multisets(
        a in 2usize..=4, n in 8usize..=30, seed in any::<u64>()
    ) {
        let x = random_subtable(a, n, seed);
        let y = random_masking(&x, seed ^ 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let (z1, z2, (s, r)) = crossover(&x, &y, &mut rng);
        prop_assert!(s <= r && r < x.flat_len());
        for p in 0..x.flat_len() {
            let mut before = [x.get_flat(p), y.get_flat(p)];
            let mut after = [z1.get_flat(p), z2.get_flat(p)];
            before.sort_unstable();
            after.sort_unstable();
            prop_assert_eq!(before, after);
        }
        prop_assert!(z1.validate().is_ok());
        prop_assert!(z2.validate().is_ok());
    }

    #[test]
    fn all_measures_bounded_for_arbitrary_maskings(
        a in 2usize..=3, n in 10usize..=30, seed in any::<u64>()
    ) {
        let original = random_subtable(a, n, seed);
        let masked = random_masking(&original, seed ^ 4);
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let assessment = ev.evaluate(&masked);
        for v in [
            assessment.il_parts.ctbil,
            assessment.il_parts.dbil,
            assessment.il_parts.ebil,
            assessment.dr_parts.id,
            assessment.dr_parts.dbrl,
            assessment.dr_parts.prl,
            assessment.dr_parts.rsrl,
        ] {
            prop_assert!((0.0..=100.0).contains(&v), "measure out of range: {}", v);
        }
    }

    #[test]
    fn identity_masking_has_zero_il_and_full_interval_disclosure(
        a in 2usize..=3, n in 10usize..=30, seed in any::<u64>()
    ) {
        let original = random_subtable(a, n, seed);
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let assessment = ev.evaluate(&original);
        prop_assert!(assessment.il() < 1e-9);
        prop_assert!((assessment.dr_parts.id - 100.0).abs() < 1e-9);
    }

    #[test]
    fn aggregators_are_monotone_and_bounded(
        il in 0.0f64..100.0, dr in 0.0f64..100.0, d in 0.0f64..10.0
    ) {
        for agg in [
            ScoreAggregator::Mean,
            ScoreAggregator::Max,
            ScoreAggregator::Weighted { w: 0.3 },
            ScoreAggregator::DistanceToIdeal,
        ] {
            let base = agg.score(il, dr);
            prop_assert!((0.0..=100.0 + 1e-9).contains(&base));
            prop_assert!(agg.score((il + d).min(100.0), dr) + 1e-9 >= base);
            prop_assert!(agg.score(il, (dr + d).min(100.0)) + 1e-9 >= base);
        }
    }

    #[test]
    fn pram_invariant_matrix_preserves_any_marginal(
        seed in any::<u64>(), cats in 2usize..=10, theta in 0.05f64..1.0
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probs: Vec<f64> = (0..cats).map(|_| rng.gen_range(0.01..1.0)).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let t = Pram::new(theta, PramMode::Invariant).transition_matrix(&probs);
        for b in 0..cats {
            let out: f64 = (0..cats).map(|a| probs[a] * t[a][b]).sum();
            prop_assert!((out - probs[b]).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_swapping_preserves_marginals_on_random_tables(
        a in 2usize..=4, n in 10usize..=40, seed in any::<u64>(), p in 1usize..=30
    ) {
        let original = random_subtable(a, n, seed);
        let hs: Vec<&Hierarchy> = vec![];
        let ctx = MethodContext { hierarchies: &hs };
        let mut rng = StdRng::seed_from_u64(seed ^ 5);
        let masked = RankSwapping::new(p).protect(&original, &ctx, &mut rng).unwrap();
        for k in 0..original.n_attrs() {
            let count = |col: &[Code]| {
                let mut c = vec![0usize; original.attr(k).n_categories()];
                for &v in col {
                    c[v as usize] += 1;
                }
                c
            };
            prop_assert_eq!(count(original.column(k)), count(masked.column(k)));
        }
    }

    #[test]
    fn incremental_chain_matches_full_exactly(
        a in 2usize..=3, n in 10usize..=25, seed in any::<u64>()
    ) {
        // a chain of 8 single-cell reassessments equals the full recompute
        // bit for bit — every measure, PRL and RSRL included
        let original = random_subtable(a, n, seed);
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let mut masked = original.clone();
        let mut state = ev.assess(&masked);
        let mut rng = StdRng::seed_from_u64(seed ^ 6);
        for _ in 0..8 {
            let row = rng.gen_range(0..n);
            let k = rng.gen_range(0..a);
            let c = masked.attr(k).n_categories() as Code;
            let old = masked.get(row, k);
            masked.set(row, k, rng.gen_range(0..c));
            state = ev.reassess_mutation(&state, &masked, row, k, old);
        }
        let full = ev.assess(&masked);
        prop_assert_eq!(state.assessment, full.assessment);
    }

    #[test]
    fn patch_reassess_matches_full_exactly(
        a in 2usize..=3, n in 10usize..=25, cells in 1usize..=12, seed in any::<u64>()
    ) {
        // one multi-cell patch == the full recompute, bit for bit: the
        // exact-by-construction measures (CTBIL/DBIL/EBIL/ID, DBRL) and
        // the census-refit PRL / midrank-aware RSRL alike
        let original = random_subtable(a, n, seed);
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let mut masked = random_masking(&original, seed ^ 7);
        let state = ev.assess(&masked);
        let mut rng = StdRng::seed_from_u64(seed ^ 8);
        let mut patch_cells: Vec<PatchCell> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..cells {
            let row = rng.gen_range(0..n);
            let k = rng.gen_range(0..a);
            if !seen.insert((row, k)) {
                continue;
            }
            let c = masked.attr(k).n_categories() as Code;
            let old = masked.get(row, k);
            masked.set(row, k, rng.gen_range(0..c));
            patch_cells.push(PatchCell { row, attr: k, old });
        }
        let patched = ev.reassess(&state, &masked, &Patch::from_cells(patch_cells));
        let full = ev.assess(&masked);
        let (p, f) = (patched.assessment, full.assessment);
        prop_assert_eq!(p.dr_parts.prl, f.dr_parts.prl);
        prop_assert_eq!(p.dr_parts.rsrl, f.dr_parts.rsrl);
        prop_assert_eq!(p, f);
    }

    #[test]
    fn crossover_offspring_patch_matches_full_exactly(
        a in 2usize..=3, n in 10usize..=25, seed in any::<u64>()
    ) {
        // evaluate a real crossover offspring via its flat-range patch and
        // compare against the full recompute (the incremental_crossover
        // path): bit-identical across all seven measures
        let x = random_subtable(a, n, seed);
        let y = random_masking(&x, seed ^ 9);
        let ev = Evaluator::new(&x, MetricConfig::default()).unwrap();
        let x_state = ev.assess(&x);
        let mut rng = StdRng::seed_from_u64(seed ^ 10);
        let (z1, _, (s, r)) = crossover(&x, &y, &mut rng);
        let old_values: Vec<Code> = (s..=r).map(|p| x.get_flat(p)).collect();
        let patched = ev.reassess(&x_state, &z1, &Patch::flat_range(s, r, old_values));
        let full = ev.assess(&z1);
        let (p, f) = (patched.assessment, full.assessment);
        prop_assert_eq!(p.dr_parts.prl, f.dr_parts.prl);
        prop_assert_eq!(p.dr_parts.rsrl, f.dr_parts.rsrl);
        prop_assert_eq!(p, f);
    }

    #[test]
    fn hierarchies_map_into_valid_codes_at_every_level(
        cats in 1usize..=25
    ) {
        let attr = Attribute::ordinal("X", cats);
        let h = Hierarchy::ordinal_auto(&attr);
        for l in 0..h.n_levels() {
            for code in 0..cats as Code {
                let mapped = h.level(l).map(code);
                prop_assert!((mapped as usize) < cats);
            }
        }
        // deepest level collapses everything
        let deepest = h.level(h.n_levels() - 1);
        let first = deepest.map(0);
        for code in 0..cats as Code {
            prop_assert_eq!(deepest.map(code), first);
        }
    }

    #[test]
    fn subtable_flat_round_trip(
        a in 2usize..=4, n in 8usize..=30, seed in any::<u64>()
    ) {
        let sub = random_subtable(a, n, seed);
        for p in 0..sub.flat_len() {
            let (row, k) = sub.coords_of_flat(p);
            prop_assert!(row < n && k < a);
            prop_assert_eq!(sub.get_flat(p), sub.get(row, k));
            prop_assert_eq!(row * a + k, p);
        }
    }

    #[test]
    fn nominal_kind_never_uses_code_distance(
        n in 10usize..=30, seed in any::<u64>()
    ) {
        // for nominal attributes, any two distinct codes are equidistant
        let mut rng = StdRng::seed_from_u64(seed);
        let cats = rng.gen_range(3..=8);
        let attr = Attribute::nominal("N", cats);
        let schema = Arc::new(Schema::new(vec![attr, Attribute::ordinal("O", 4)]).unwrap());
        let columns = vec![
            (0..n).map(|_| rng.gen_range(0..cats as Code)).collect(),
            (0..n).map(|_| rng.gen_range(0..4)).collect(),
        ];
        let sub = SubTable::new(schema, vec![0, 1], columns).unwrap();
        let ev = Evaluator::new(&sub, MetricConfig::default()).unwrap();
        let prep = ev.prepared();
        for x in 0..cats as Code {
            for y in 0..cats as Code {
                let d = prep.cell_distance(0, x, y);
                if x == y {
                    prop_assert_eq!(d, 0.0);
                } else {
                    prop_assert_eq!(d, 1.0);
                }
            }
        }
    }

    #[test]
    fn attr_kind_is_exposed_consistently(kind_ord in any::<bool>(), cats in 2usize..=6) {
        let attr = if kind_ord {
            Attribute::ordinal("K", cats)
        } else {
            Attribute::nominal("K", cats)
        };
        prop_assert_eq!(attr.kind() == AttrKind::Ordinal, kind_ord);
        prop_assert_eq!(attr.n_categories(), cats);
    }
}
