//! Offline stand-in for the subset of `criterion` this workspace's bench
//! targets use. It keeps the call shapes (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `iter`/`iter_batched`,
//! `BenchmarkId`, `BatchSize`) and performs a real — if statistically
//! unsophisticated — wall-clock measurement: a short warm-up, then
//! `sample_size` timed samples, reporting min/mean.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hand `x` to the optimizer-opaque sink (re-export shim over `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in times every
/// routine invocation individually, so the variants only exist for call
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// A `function-name/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label composed of a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`. Each sample times a batch of invocations sized so
    /// the timed region is ≳10µs, then divides — otherwise sub-microsecond
    /// routines would mostly measure `Instant` overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_micros(10).as_nanos() / once.as_nanos()).clamp(1, 1024) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    /// Time `routine` on inputs produced by an untimed `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{id:<50} min {:>12?}   mean {:>12?}   ({} samples)",
            min,
            mean,
            self.samples.len()
        );
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// the stand-in defaults to 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored; accepted for call compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream flushes reports here; the stand-in prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name,
            _criterion: self,
            sample_size,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit the `main` that runs each group (bench targets set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scale", 4), &4u64, |b, &k| {
            b.iter_batched(
                || vec![k; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }
}
