//! Offline stand-in for the `crossbeam::thread::scope` API this workspace
//! uses, implemented on top of `std::thread::scope` (stable since 1.63).
//!
//! Differences from upstream crossbeam are confined to panic plumbing: a
//! panicking worker propagates through `std::thread::scope` instead of
//! surfacing as `Err`, so the `Ok` arm is the only one this wrapper ever
//! returns. Callers in this workspace immediately `.expect()` the result,
//! which behaves identically under both implementations.

/// Scoped threads with the crossbeam 0.8 call shape.
pub mod thread {
    use std::any::Any;

    /// Wrapper over [`std::thread::Scope`] whose `spawn` passes the scope
    /// back into the closure, like crossbeam's.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope so it can spawn
        /// nested workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope in which borrowing, non-`'static` threads can
    /// be spawned; all workers are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &x) in out.iter_mut().zip(data.iter()) {
                scope.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
