//! Collection strategies: `vec(element, size)`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len =
            rng.next_in_span(self.size.lo as i128, self.size.hi_inclusive as i128 + 1) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element` and whose length
/// comes from `size` (an exact `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
