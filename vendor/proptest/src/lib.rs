//! Offline stand-in for the subset of `proptest` this workspace's
//! property tests use: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`, range/tuple/`collection::vec` strategies,
//! `any::<T>()`, `ProptestConfig`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and the formatted assertion message. Cases are generated
//! from a fixed per-case seed, so failures reproduce deterministically.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_test(stringify!($name), case);
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("proptest case {case}: {message}");
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Skip the current case unless `cond` holds (upstream rejects and
/// resamples; the stand-in counts the case as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 2usize..=4, n in 8usize..30, x in 0.5f64..2.0) {
            prop_assert!((2..=4).contains(&a));
            prop_assert!((8..30).contains(&n));
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn any_and_assume(seed in any::<u64>(), flag in any::<bool>()) {
            prop_assume!(flag || seed.is_multiple_of(2));
            prop_assert_eq!(seed.wrapping_add(0), seed);
        }

        #[test]
        fn vec_and_combinators(v in crate::collection::vec(0u16..10, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_dependent_sizes(
            (len, v) in (1usize..=8).prop_flat_map(|len| {
                (crate::strategy::Just(len), crate::collection::vec(0u8..5, len))
            })
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn map_transforms(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = 0u64..1000;
        let a: Vec<u64> = (0..5)
            .map(|c| Strategy::sample(&s, &mut crate::TestRng::for_case(c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| Strategy::sample(&s, &mut crate::TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
