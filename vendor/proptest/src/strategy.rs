//! Value-generation strategies: ranges, tuples, `any`, and the
//! `prop_map`/`prop_flat_map` combinators. No shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from
    /// it (for dependent shapes, e.g. a length and a vec of that length).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategies are shared by reference inside tuple/vec combinators.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_in_span(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_in_span(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (rng.next_unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_unit_f64() as f32
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
