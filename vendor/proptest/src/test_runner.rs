//! Case scheduling: configuration and the per-case RNG.

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator; each test case gets an independent, fixed stream
/// so failures reproduce without persisted seeds.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The deterministic RNG for case number `case`.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15 ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        }
    }

    /// The deterministic RNG for case `case` of the test named `name`:
    /// folding the name in gives each property its own input stream
    /// instead of every test sampling the identical sequence.
    pub fn for_test(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15 ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)` as a signed 128-bit span (covers every
    /// primitive integer type after widening).
    pub fn next_in_span(&mut self, lo: i128, hi_exclusive: i128) -> i128 {
        assert!(lo < hi_exclusive, "cannot sample empty range");
        let span = (hi_exclusive - lo) as u128;
        lo + ((self.next_u64() as u128) % span) as i128
    }
}
