//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no crates.io access, so the workspace
//! vendors a small, deterministic implementation with the same names and
//! signatures: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngCore`,
//! and `Rng::{gen, gen_range, gen_bool}`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12, but every consumer in this
//! workspace only relies on determinism for a fixed seed, not on matching
//! upstream's exact output.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: the object-safe subset.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it through SplitMix64 like rand 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }

    /// Build from OS-provided entropy (here: wall clock + ASLR address).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let addr = &t as *const _ as u64;
        Self::seed_from_u64(t ^ addr.rotate_left(32))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                let x = self.start + unit * (self.end - self.start);
                // lo + u*(hi-lo) can round up to hi; keep the range half-open
                if x >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    x
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24-bit mantissa directly; a 53-bit unit cast to f32 can round to 1.0
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring rand 0.8.
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution (uniform for ints,
    /// `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (deterministic per seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&x[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2u16..=8);
            assert!((2..=8).contains(&y));
            let f = rng.gen_range(0.01f64..1.0);
            assert!((0.01..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0usize..4);
        assert!(v < 4);
        let _: f64 = dyn_rng.gen();
    }
}
